// Wire-message codec discipline and adversarial robustness sweeps:
// mutation of every byte of valid artifacts must be either rejected or
// harmless, never accepted with changed meaning, and never crash.
#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/daric/messages.h"
#include "src/daric/protocol.h"
#include "src/script/interpreter.h"
#include "src/tx/sighash.h"
#include "src/util/serialize.h"

namespace daric {
namespace {

using daricch::msg::Envelope;
using daricch::msg::Type;
using sim::PartyId;

Bytes sig_bytes(Byte fill) { return Bytes(script::kWireSigSize, fill); }

daricch::DaricPubKeys test_keys(const std::string& label) {
  return to_pub(daricch::DaricKeys::derive(label, "msg-test"));
}

// --- Codec round trips -------------------------------------------------

TEST(Messages, CreateInfoRoundTrip) {
  Envelope e;
  e.type = Type::kCreateInfo;
  e.channel_id = "chan-42";
  daricch::msg::CreateInfo b;
  b.funding_source = {crypto::Sha256::hash(Bytes{1}), 3};
  b.keys = test_keys("A");
  e.body = b;
  const auto back = daricch::msg::decode(daricch::msg::encode(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, Type::kCreateInfo);
  EXPECT_EQ(back->channel_id, "chan-42");
  const auto& body = std::get<daricch::msg::CreateInfo>(back->body);
  EXPECT_EQ(body.funding_source.vout, 3u);
  EXPECT_EQ(body.keys.rv2, b.keys.rv2);
}

TEST(Messages, UpdateReqRoundTripWithHtlcs) {
  Envelope e;
  e.type = Type::kUpdateReq;
  e.channel_id = "c";
  daricch::msg::UpdateReq b;
  b.next_state = {40'000, 50'000, {{10'000, Bytes(20, 0xaa), true, 12}}};
  b.t_stp = 7;
  e.body = b;
  const auto back = daricch::msg::decode(daricch::msg::encode(e));
  ASSERT_TRUE(back.has_value());
  const auto& body = std::get<daricch::msg::UpdateReq>(back->body);
  EXPECT_TRUE(body.next_state == b.next_state);
  EXPECT_EQ(body.t_stp, 7u);
}

TEST(Messages, AllSignatureMessagesRoundTrip) {
  const struct {
    Type type;
    Envelope env;
  } cases[] = {
      {Type::kCreateCom, {Type::kCreateCom, "c", daricch::msg::CreateCom{sig_bytes(1), sig_bytes(2)}}},
      {Type::kCreateFund, {Type::kCreateFund, "c", daricch::msg::CreateFund{sig_bytes(3)}}},
      {Type::kUpdateInfo, {Type::kUpdateInfo, "c", daricch::msg::UpdateInfo{sig_bytes(4)}}},
      {Type::kUpdateComP, {Type::kUpdateComP, "c", daricch::msg::UpdateComP{sig_bytes(5), sig_bytes(6)}}},
      {Type::kUpdateComQ, {Type::kUpdateComQ, "c", daricch::msg::UpdateComQ{sig_bytes(7)}}},
      {Type::kRevokeP, {Type::kRevokeP, "c", daricch::msg::Revoke{sig_bytes(8)}}},
      {Type::kRevokeQ, {Type::kRevokeQ, "c", daricch::msg::Revoke{sig_bytes(9)}}},
      {Type::kCloseP, {Type::kCloseP, "c", daricch::msg::Close{sig_bytes(10)}}},
      {Type::kCloseQ, {Type::kCloseQ, "c", daricch::msg::Close{sig_bytes(11)}}},
  };
  for (const auto& c : cases) {
    const auto back = daricch::msg::decode(daricch::msg::encode(c.env));
    ASSERT_TRUE(back.has_value()) << static_cast<int>(c.type);
    EXPECT_EQ(back->type, c.type);
  }
}

TEST(Messages, UnknownTypeRejected) {
  Envelope e{Type::kCreateFund, "c", daricch::msg::CreateFund{sig_bytes(1)}};
  Bytes wire = daricch::msg::encode(e);
  wire[0] = 0xff;  // type 0x??ff
  wire[1] = 0x7f;
  EXPECT_FALSE(daricch::msg::decode(wire).has_value());
}

TEST(Messages, TrailingBytesRejected) {
  Envelope e{Type::kCreateFund, "c", daricch::msg::CreateFund{sig_bytes(1)}};
  Bytes wire = daricch::msg::encode(e);
  wire.push_back(0);
  EXPECT_FALSE(daricch::msg::decode(wire).has_value());
}

TEST(Messages, EveryTruncationRejectedOrNullopt) {
  Envelope e;
  e.type = Type::kUpdateReq;
  e.channel_id = "chan";
  e.body = daricch::msg::UpdateReq{{1'000, 2'000, {{500, Bytes(20, 1), false, 3}}}, 9};
  const Bytes wire = daricch::msg::encode(e);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const BytesView prefix(wire.data(), cut);
    EXPECT_FALSE(daricch::msg::decode(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(Messages, ExcessiveHtlcCountRejected) {
  // Hand-craft an UpdateReq claiming 10,000 HTLCs (above the BOLT cap).
  Writer w;
  w.u16le(static_cast<std::uint16_t>(Type::kUpdateReq));
  w.var_bytes(Bytes{'c'});
  w.u64le(1);
  w.u64le(2);
  w.varint(10'000);
  EXPECT_FALSE(daricch::msg::decode(w.data()).has_value());
}

// --- Fuzz-ish mutation sweeps ------------------------------------------

TEST(MutationSweep, MessageByteFlipsNeverCrash) {
  Envelope e;
  e.type = Type::kCreateInfo;
  e.channel_id = "mutate";
  daricch::msg::CreateInfo b;
  b.funding_source = {crypto::Sha256::hash(Bytes{7}), 0};
  b.keys = test_keys("B");
  e.body = b;
  const Bytes wire = daricch::msg::encode(e);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x55;
    // Must not crash; may decode (a pubkey byte is opaque here) or reject.
    (void)daricch::msg::decode(mutated);
  }
  SUCCEED();
}

TEST(MutationSweep, WitnessTamperingNeverValidates) {
  // Every single-byte flip of any witness signature in a confirmed-style
  // revocation transaction must fail script verification.
  sim::Environment env(2, crypto::schnorr_scheme());
  channel::ChannelParams p;
  p.id = "fuzz-1";
  p.cash_a = 50'000;
  p.cash_b = 50'000;
  p.t_punish = 6;
  daricch::DaricChannel ch(env, p);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({40'000, 60'000, {}}));
  ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(ch.run_until_closed());
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());

  const tx::Output spent = commit->outputs[0];
  ASSERT_EQ(tx::verify_input(*rv, 0, spent, env.scheme(), 0), script::ScriptError::kOk);
  for (std::size_t el : {1u, 2u}) {  // the two multisig signatures
    for (std::size_t i = 0; i < rv->witnesses[0].stack[el].size(); i += 5) {
      tx::Transaction mutated = *rv;
      mutated.witnesses[0].stack[el][i] ^= 0x01;
      EXPECT_NE(tx::verify_input(mutated, 0, spent, env.scheme(), 0),
                script::ScriptError::kOk)
          << "element " << el << " byte " << i;
    }
  }
}

TEST(MutationSweep, RandomScriptsNeverCrashInterpreter) {
  // Pseudo-random instruction soup: the interpreter must terminate with a
  // clean error code, never crash or hang.
  std::uint64_t state = 12345;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const script::Op ops[] = {
      script::Op::OP_0,     script::Op::OP_1,       script::Op::OP_IF,
      script::Op::OP_ELSE,  script::Op::OP_ENDIF,   script::Op::OP_DROP,
      script::Op::OP_DUP,   script::Op::OP_EQUAL,   script::Op::OP_VERIFY,
      script::Op::OP_SHA256, script::Op::OP_HASH160, script::Op::OP_CHECKSIG,
      script::Op::OP_CHECKMULTISIG, script::Op::OP_CHECKLOCKTIMEVERIFY,
      script::Op::OP_CHECKSEQUENCEVERIFY, script::Op::OP_RETURN,
  };
  struct NullChecker : script::SigChecker {
    bool check_sig(BytesView, BytesView) const override { return false; }
    bool check_locktime(std::uint32_t) const override { return true; }
    bool check_sequence(std::uint32_t) const override { return true; }
  };
  for (int iter = 0; iter < 300; ++iter) {
    script::Script s;
    const int len = 1 + static_cast<int>(next() % 24);
    for (int i = 0; i < len; ++i) {
      const std::uint64_t pick = next() % (std::size(ops) + 2);
      if (pick < std::size(ops)) {
        s.op(ops[pick]);
      } else if (pick == std::size(ops)) {
        s.push(Bytes(next() % 40, static_cast<Byte>(next())));
      } else {
        s.num4(static_cast<std::uint32_t>(next()));
      }
    }
    std::vector<Bytes> stack;
    for (std::uint64_t i = 0; i < next() % 4; ++i)
      stack.push_back(Bytes(next() % 8, static_cast<Byte>(next())));
    (void)script::eval_script(s, stack, NullChecker{});  // must not crash
  }
  SUCCEED();
}

TEST(MutationSweep, LedgerRejectsMutatedTransactionsGracefully) {
  sim::Environment env(2, crypto::schnorr_scheme());
  const auto key = crypto::derive_keypair("fuzz-ledger");
  const tx::OutPoint op = env.ledger().mint(5'000, tx::Condition::p2wpkh(key.pk.compressed()));
  tx::Transaction t;
  t.inputs = {{op}};
  t.outputs = {{5'000, tx::Condition::p2wpkh(key.pk.compressed())}};
  const Bytes sig =
      tx::sign_input(t, 0, key.sk, env.scheme(), script::SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].stack = {sig, key.pk.compressed()};

  std::uint64_t state = 777;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  for (int iter = 0; iter < 50; ++iter) {
    tx::Transaction mutated = t;
    switch (next() % 4) {
      case 0: mutated.outputs[0].cash += static_cast<Amount>(next() % 1000 + 1); break;
      case 1: mutated.witnesses[0].stack[0][next() % 64] ^= 0xff; break;
      case 2: mutated.nlocktime = static_cast<std::uint32_t>(next() % 100 + 1000); break;
      case 3: mutated.inputs[0].prevout.vout += 1; break;
    }
    env.ledger().post_with_delay(mutated, 0);
    env.advance_round();
    EXPECT_FALSE(env.ledger().is_confirmed(mutated.txid())) << "iter " << iter;
  }
  // The untouched original still confirms — the set above was all-invalid.
  env.ledger().post_with_delay(t, 0);
  env.advance_round();
  EXPECT_TRUE(env.ledger().is_confirmed(t.txid()));
}

}  // namespace
}  // namespace daric
