// Cerberus baseline engine: incentivized-watchtower punishment, O(n)
// storage for party and tower, and Appendix H.6's commit layout.
#include <gtest/gtest.h>

#include "src/cerberus/protocol.h"
#include "src/tx/weight.h"

namespace daric {
namespace {

using cerberus::CbOutcome;
using cerberus::CerberusChannel;
using channel::StateVec;
using sim::PartyId;

constexpr Round kDelta = 2;
constexpr Amount kReward = 5'000;

channel::ChannelParams make_params(const std::string& id) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = 6;
  return p;
}

TEST(Cerberus, OutputScriptIs115Bytes) {
  const auto k = crypto::derive_keypair("cb-s");
  const auto s =
      cerberus::cerberus_output_script(k.pk.compressed(), k.pk.compressed(), 144,
                                       k.pk.compressed());
  EXPECT_EQ(s.wire_size(), 115u);  // Appendix H.6
}

TEST(Cerberus, CommitMatchesAppendixH6Weight) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  CerberusChannel ch(env, make_params("cb-w"), kReward);
  ASSERT_TRUE(ch.create());
  const auto size = tx::measure(ch.latest_commit(PartyId::kA));
  EXPECT_EQ(size.base, 137u);      // two P2WSH outputs
  EXPECT_EQ(size.witness(), 224u);
  EXPECT_EQ(size.weight(), 772u);  // Table 3's non-collab figure
}

TEST(Cerberus, CreateUpdateCooperativeClose) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  CerberusChannel ch(env, make_params("cb-1"), kReward);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  ASSERT_TRUE(ch.update({300'000, 700'000, {}}));
  EXPECT_EQ(ch.state_number(), 2u);
  ASSERT_TRUE(ch.cooperative_close());
  EXPECT_EQ(ch.outcome(), CbOutcome::kCooperative);
}

TEST(Cerberus, ForceCloseSweepsAfterDelay) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  CerberusChannel ch(env, make_params("cb-2"), kReward);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  ch.force_close(PartyId::kB);
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_EQ(ch.outcome(), CbOutcome::kNonCollaborative);
}

class CerberusPunishSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CerberusPunishSweep, TowerPunishesAndCollectsReward) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  CerberusChannel ch(env, make_params("cb-p" + std::to_string(GetParam())), kReward);
  ASSERT_TRUE(ch.create());
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(ch.update({500'000 - i * 1000, 500'000 + i * 1000, {}}));

  ch.publish_old_commit(PartyId::kA, GetParam());
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_EQ(ch.outcome(), CbOutcome::kPunished);
  EXPECT_TRUE(ch.tower(PartyId::kB).reacted());

  // The revocation pays (capacity − reward) to B and the reward to the tower.
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  ASSERT_TRUE(commit.has_value());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->outputs.size(), 2u);
  EXPECT_EQ(rv->outputs[0].cash, 1'000'000 - kReward);
  EXPECT_EQ(rv->outputs[1].cash, kReward);
  EXPECT_EQ(rv->outputs[1].cond,
            tx::Condition::p2wpkh(ch.tower_reward_pk()));
}

INSTANTIATE_TEST_SUITE_P(States, CerberusPunishSweep, ::testing::Values(0u, 1u, 2u));

TEST(Cerberus, PartyAndTowerStorageGrowLinearly) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  CerberusChannel ch(env, make_params("cb-3"), kReward);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  const std::size_t p1 = ch.party_storage_bytes(PartyId::kA);
  const std::size_t t1 = ch.tower(PartyId::kA).storage_bytes();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.update({450'000 - i, 550'000 + i, {}}));
  EXPECT_GT(ch.party_storage_bytes(PartyId::kA), p1);
  EXPECT_GT(ch.tower(PartyId::kA).storage_bytes(), t1);
}

TEST(Cerberus, RejectsDegenerateReward) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  EXPECT_THROW(CerberusChannel(env, make_params("cb-bad"), 0), std::invalid_argument);
  EXPECT_THROW(CerberusChannel(env, make_params("cb-bad2"), 2'000'000),
               std::invalid_argument);
}

}  // namespace
}  // namespace daric
