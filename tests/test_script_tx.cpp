// Script interpreter, transaction serialization, sighash and weight tests.
// Byte-size assertions cross-check Appendix H's accounting.
#include <gtest/gtest.h>

#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/daric/scripts.h"
#include "src/eltoo/scripts.h"
#include "src/lightning/scripts.h"
#include "src/script/interpreter.h"
#include "src/script/standard.h"
#include "src/tx/serializer.h"
#include "src/tx/sighash.h"
#include "src/tx/weight.h"
#include "src/util/serialize.h"

namespace daric {
namespace {

using script::Op;
using script::Script;
using script::ScriptError;
using script::SighashFlag;

const auto kA = crypto::derive_keypair("tx-test/A");
const auto kB = crypto::derive_keypair("tx-test/B");

Hash256 dummy_txid(int i) {
  Bytes b{static_cast<Byte>(i)};
  return crypto::Sha256::hash(b);
}

// --- Appendix-H script sizes ---------------------------------------------

TEST(ScriptSizes, Multisig2of2Is71Bytes) {
  EXPECT_EQ(script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed()).wire_size(), 71u);
}

TEST(ScriptSizes, DaricCommitScriptIs157Bytes) {
  const Script s = daricch::commit_script(kA.pk.compressed(), kB.pk.compressed(),
                                          kA.pk.compressed(), kB.pk.compressed(), 42, 10);
  EXPECT_EQ(s.wire_size(), 157u);  // Appendix H.3
}

TEST(ScriptSizes, LightningToLocalIs78Bytes) {
  const Script s = lightning::to_local_script(kA.pk.compressed(), 144, kB.pk.compressed());
  EXPECT_EQ(s.wire_size(), 78u);  // Appendix H.1
}

TEST(ScriptSizes, HtlcScriptIs101Bytes) {
  const Bytes h(20, 0xab);
  EXPECT_EQ(script::htlc(h, kA.pk.compressed(), kB.pk.compressed(), 144).wire_size(), 101u);
}

TEST(ScriptSizes, EltooUpdateScriptIs157Bytes) {
  // Appendix H.4 counts 151 bytes for a listing without an explicit state
  // CLTV (eltoo hides the state floor in the key/locktime machinery). Our
  // executable script carries the <S0+i+1> CLTV guard explicitly: +6 bytes.
  // Table 3 reproduction uses the paper's component sizes (costmodel).
  const Script s = eltoo::update_script(kA.pk.compressed(), kB.pk.compressed(),
                                        kA.pk.compressed(), kB.pk.compressed(), 7, 10);
  EXPECT_EQ(s.wire_size(), 157u);
}

TEST(ScriptSizes, SingleKeyScriptIs35Bytes) {
  EXPECT_EQ(script::single_key(kA.pk.compressed()).wire_size(), 35u);
}

// --- Interpreter primitives ----------------------------------------------

class StubChecker : public script::SigChecker {
 public:
  bool sig_result = true;
  std::uint32_t locktime = 0;
  Round age = 0;
  bool check_sig(BytesView, BytesView) const override { return sig_result; }
  bool check_locktime(std::uint32_t lock) const override { return locktime >= lock; }
  bool check_sequence(std::uint32_t a) const override {
    return age >= static_cast<Round>(a);
  }
};

TEST(Interpreter, PushAndEqual) {
  Script s;
  s.push(Bytes{1, 2}).push(Bytes{1, 2}).op(Op::OP_EQUAL);
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kOk);
}

TEST(Interpreter, EqualVerifyFails) {
  Script s;
  s.push(Bytes{1}).push(Bytes{2}).op(Op::OP_EQUALVERIFY).small_int(1);
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kEqualVerifyFailed);
}

TEST(Interpreter, IfElseBranching) {
  for (bool branch : {true, false}) {
    Script s;
    s.op(Op::OP_IF).small_int(7).op(Op::OP_ELSE).small_int(9).op(Op::OP_ENDIF);
    std::vector<Bytes> stack{branch ? Bytes{1} : Bytes{}};
    ASSERT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kOk);
    EXPECT_EQ(script::decode_number(stack.back()), branch ? 7u : 9u);
  }
}

TEST(Interpreter, NestedConditionals) {
  // IF IF 1 ELSE 2 ENDIF ELSE 3 ENDIF with selectors [inner, outer].
  Script s;
  s.op(Op::OP_IF)
      .op(Op::OP_IF)
      .small_int(1)
      .op(Op::OP_ELSE)
      .small_int(2)
      .op(Op::OP_ENDIF)
      .op(Op::OP_ELSE)
      .small_int(3)
      .op(Op::OP_ENDIF);
  struct Case {
    Bytes inner, outer;
    std::uint64_t expect;
  };
  for (const Case& c : {Case{{1}, {1}, 1}, Case{{}, {1}, 2}, Case{{9}, {}, 3}}) {
    std::vector<Bytes> stack{c.inner, c.outer};
    ASSERT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kOk);
    EXPECT_EQ(script::decode_number(stack.back()), c.expect);
  }
}

TEST(Interpreter, UnbalancedConditionalRejected) {
  Script s;
  s.op(Op::OP_IF).small_int(1);
  std::vector<Bytes> stack{Bytes{1}};
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kUnbalancedConditional);
}

TEST(Interpreter, OpReturnFails) {
  Script s;
  s.op(Op::OP_RETURN);
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kOpReturn);
}

TEST(Interpreter, CltvRespectsChecker) {
  Script s;
  s.num4(100).op(Op::OP_CHECKLOCKTIMEVERIFY).op(Op::OP_DROP).small_int(1);
  StubChecker c;
  std::vector<Bytes> stack;
  c.locktime = 99;
  EXPECT_EQ(eval_script(s, stack, c), ScriptError::kLocktimeNotSatisfied);
  stack.clear();
  c.locktime = 100;
  EXPECT_EQ(eval_script(s, stack, c), ScriptError::kOk);
}

TEST(Interpreter, CsvRespectsChecker) {
  Script s;
  s.num4(10).op(Op::OP_CHECKSEQUENCEVERIFY).op(Op::OP_DROP).small_int(1);
  StubChecker c;
  std::vector<Bytes> stack;
  c.age = 9;
  EXPECT_EQ(eval_script(s, stack, c), ScriptError::kSequenceNotSatisfied);
  stack.clear();
  c.age = 10;
  EXPECT_EQ(eval_script(s, stack, c), ScriptError::kOk);
}

TEST(Interpreter, StackUnderflowDetected) {
  Script s;
  s.op(Op::OP_DROP);
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kStackUnderflow);
}

TEST(Interpreter, DirtyFalseTopFails) {
  Script s;
  s.op(Op::OP_0);
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(s, stack, StubChecker{}), ScriptError::kFalseTopOfStack);
}

// --- Real signature spends over verify_input ----------------------------

struct Spend {
  tx::Output spent;
  tx::Transaction tx;
};

Spend make_p2wpkh_spend(const crypto::KeyPair& owner, Amount value) {
  Spend s;
  s.spent = {value, tx::Condition::p2wpkh(owner.pk.compressed())};
  s.tx.inputs = {{{dummy_txid(1), 0}}};
  s.tx.outputs = {{value, tx::Condition::p2wpkh(owner.pk.compressed())}};
  const Bytes sig =
      tx::sign_input(s.tx, 0, owner.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  s.tx.witnesses.resize(1);
  s.tx.witnesses[0].stack = {sig, owner.pk.compressed()};
  return s;
}

TEST(VerifyInput, P2wpkhHappyPath) {
  const Spend s = make_p2wpkh_spend(kA, 1000);
  EXPECT_EQ(tx::verify_input(s.tx, 0, s.spent, crypto::schnorr_scheme(), 0),
            ScriptError::kOk);
}

TEST(VerifyInput, P2wpkhWrongKeyRejected) {
  Spend s = make_p2wpkh_spend(kA, 1000);
  s.tx.witnesses[0].stack[1] = kB.pk.compressed();  // hash mismatch
  EXPECT_EQ(tx::verify_input(s.tx, 0, s.spent, crypto::schnorr_scheme(), 0),
            ScriptError::kEqualVerifyFailed);
}

TEST(VerifyInput, P2wpkhTamperedSigRejected) {
  Spend s = make_p2wpkh_spend(kA, 1000);
  s.tx.witnesses[0].stack[0][7] ^= 1;
  EXPECT_EQ(tx::verify_input(s.tx, 0, s.spent, crypto::schnorr_scheme(), 0),
            ScriptError::kBadSignature);
}

TEST(VerifyInput, Multisig2of2OrderMatters) {
  const Script ms = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  tx::Transaction t;
  t.inputs = {{{dummy_txid(2), 0}}};
  t.outputs = {{500, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const tx::Output spent{500, tx::Condition::p2wsh(ms)};
  const Bytes sa = tx::sign_input(t, 0, kA.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  const Bytes sb = tx::sign_input(t, 0, kB.sk, crypto::schnorr_scheme(), SighashFlag::kAll);

  t.witnesses.resize(1);
  t.witnesses[0].witness_script = ms;
  t.witnesses[0].stack = {Bytes{}, sa, sb};
  EXPECT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0), ScriptError::kOk);

  t.witnesses[0].stack = {Bytes{}, sb, sa};  // swapped
  EXPECT_NE(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0), ScriptError::kOk);
}

TEST(VerifyInput, WitnessScriptHashMismatchRejected) {
  const Script ms = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const Script other = script::multisig_2of2(kB.pk.compressed(), kA.pk.compressed());
  tx::Transaction t;
  t.inputs = {{{dummy_txid(3), 0}}};
  t.outputs = {{500, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const tx::Output spent{500, tx::Condition::p2wsh(ms)};
  t.witnesses.resize(1);
  t.witnesses[0].witness_script = other;
  t.witnesses[0].stack = {Bytes{}, Bytes{}, Bytes{}};
  EXPECT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0),
            ScriptError::kEqualVerifyFailed);
}

// --- HTLC spends -----------------------------------------------------------

TEST(Htlc, RedeemWithPreimageAndClaimbackAfterTimeout) {
  const Bytes preimage{1, 2, 3, 4};
  const crypto::Hash160 h = crypto::hash160(preimage);
  const Script htlc = script::htlc(h.view(), kB.pk.compressed(), kA.pk.compressed(), 10);
  const tx::Output spent{700, tx::Condition::p2wsh(htlc)};

  // Payee redeem with preimage.
  tx::Transaction redeem;
  redeem.inputs = {{{dummy_txid(4), 0}}};
  redeem.outputs = {{700, tx::Condition::p2wpkh(kB.pk.compressed())}};
  const Bytes sig_b =
      tx::sign_input(redeem, 0, kB.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  redeem.witnesses.resize(1);
  redeem.witnesses[0].witness_script = htlc;
  redeem.witnesses[0].stack = {sig_b, preimage};
  EXPECT_EQ(tx::verify_input(redeem, 0, spent, crypto::schnorr_scheme(), 0),
            ScriptError::kOk);

  // Wrong preimage falls into the timeout branch and fails CSV at age 0.
  redeem.witnesses[0].stack = {sig_b, Bytes{9, 9}};
  EXPECT_EQ(tx::verify_input(redeem, 0, spent, crypto::schnorr_scheme(), 0),
            ScriptError::kSequenceNotSatisfied);

  // Payer claimback after the timeout.
  tx::Transaction back;
  back.inputs = {{{dummy_txid(4), 0}}};
  back.outputs = {{700, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const Bytes sig_a =
      tx::sign_input(back, 0, kA.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  back.witnesses.resize(1);
  back.witnesses[0].witness_script = htlc;
  back.witnesses[0].stack = {sig_a, Bytes{}};
  EXPECT_EQ(tx::verify_input(back, 0, spent, crypto::schnorr_scheme(), 9),
            ScriptError::kSequenceNotSatisfied);
  EXPECT_EQ(tx::verify_input(back, 0, spent, crypto::schnorr_scheme(), 10),
            ScriptError::kOk);
}

// --- Sighash semantics ------------------------------------------------------

TEST(Sighash, AnyPrevOutIgnoresInputs) {
  tx::Transaction t;
  t.nlocktime = 5;
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  t.inputs = {{{dummy_txid(5), 0}}};
  const Hash256 d1 = tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut);
  t.inputs = {{{dummy_txid(6), 3}}};
  const Hash256 d2 = tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut);
  EXPECT_EQ(d1, d2);

  const Hash256 a1 = tx::sighash_digest(t, 0, SighashFlag::kAll);
  t.inputs = {{{dummy_txid(7), 0}}};
  const Hash256 a2 = tx::sighash_digest(t, 0, SighashFlag::kAll);
  EXPECT_NE(a1, a2);
}

TEST(Sighash, AnyPrevOutCoversLocktimeAndOutputs) {
  tx::Transaction t;
  t.nlocktime = 5;
  t.inputs = {{{dummy_txid(5), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const Hash256 base = tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut);
  t.nlocktime = 6;
  EXPECT_NE(base, tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut));
  t.nlocktime = 5;
  t.outputs[0].cash = 101;
  EXPECT_NE(base, tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut));
}

TEST(Sighash, SingleCoversOnlyOwnOutput) {
  tx::Transaction t;
  t.inputs = {{{dummy_txid(8), 0}}, {{dummy_txid(9), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())},
               {200, tx::Condition::p2wpkh(kB.pk.compressed())}};
  const Hash256 d0 = tx::sighash_digest(t, 0, SighashFlag::kSingleAnyPrevOut);
  t.outputs[1].cash = 999;  // other output changes
  EXPECT_EQ(d0, tx::sighash_digest(t, 0, SighashFlag::kSingleAnyPrevOut));
  t.outputs[0].cash = 999;  // own output changes
  EXPECT_NE(d0, tx::sighash_digest(t, 0, SighashFlag::kSingleAnyPrevOut));
}

TEST(Sighash, FlagsAreDomainSeparated) {
  tx::Transaction t;
  t.inputs = {{{dummy_txid(10), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  EXPECT_NE(tx::sighash_digest(t, 0, SighashFlag::kAll),
            tx::sighash_digest(t, 0, SighashFlag::kAllAnyPrevOut));
}

TEST(SighashCache, MatchesDirectDigestForAllFlagsAndInputs) {
  tx::Transaction t;
  t.nlocktime = 9;
  t.inputs = {{{dummy_txid(20), 0}}, {{dummy_txid(21), 1}}, {{dummy_txid(22), 2}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())},
               {200, tx::Condition::p2wpkh(kB.pk.compressed())},
               {300, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const tx::SighashCache cache(t);
  for (const auto flag : {SighashFlag::kAll, SighashFlag::kAllAnyPrevOut,
                          SighashFlag::kSingle, SighashFlag::kSingleAnyPrevOut}) {
    for (std::size_t i = 0; i < t.inputs.size(); ++i) {
      EXPECT_EQ(cache.digest(i, flag), tx::sighash_digest(t, i, flag))
          << "flag=" << static_cast<int>(flag) << " input=" << i;
      // Repeated queries hit the cached entry and must stay stable.
      EXPECT_EQ(cache.digest(i, flag), tx::sighash_digest(t, i, flag));
    }
  }
}

TEST(SighashCache, SinglePreservesMissingOutputThrow) {
  tx::Transaction t;
  t.inputs = {{{dummy_txid(23), 0}}, {{dummy_txid(24), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const tx::SighashCache cache(t);
  EXPECT_EQ(cache.digest(0, SighashFlag::kSingle),
            tx::sighash_digest(t, 0, SighashFlag::kSingle));
  EXPECT_THROW(cache.digest(1, SighashFlag::kSingle), std::out_of_range);
  EXPECT_THROW(cache.digest(1, SighashFlag::kSingleAnyPrevOut), std::out_of_range);
}

TEST(Sighash, SingleWithoutMatchingOutputFailsValidationCleanly) {
  // Input 1 of a two-input, one-output tx has no SIGHASH_SINGLE digest: the
  // digest function throws (the caller asked an unanswerable question), but
  // an adversarial witness carrying a SINGLE flag there must make validation
  // return an error, not propagate an exception (the historic Bitcoin
  // "SIGHASH_SINGLE bug" surface; the analyzer flags templates as DA011).
  tx::Transaction t;
  t.inputs = {{{dummy_txid(40), 0}}, {{dummy_txid(41), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  EXPECT_THROW(tx::sighash_digest(t, 1, SighashFlag::kSingle), std::out_of_range);
  EXPECT_THROW(tx::sighash_digest(t, 1, SighashFlag::kSingleAnyPrevOut),
               std::out_of_range);

  // P2WSH script path: <pkB> CHECKSIG fed a SINGLE-flagged signature.
  const Script ws = script::single_key(kB.pk.compressed());
  const tx::Output spent_wsh{100, tx::Condition::p2wsh(ws)};
  t.witnesses.resize(2);
  t.witnesses[1].witness_script = ws;
  t.witnesses[1].stack = {
      script::encode_wire_sig(Bytes(64, 0x5a), SighashFlag::kSingle)};
  EXPECT_EQ(tx::verify_input(t, 1, spent_wsh, crypto::schnorr_scheme(), 0),
            ScriptError::kFalseTopOfStack);  // CHECKSIG pushed false

  // P2WPKH key path with the same out-of-range SINGLE signature.
  const tx::Output spent_wpkh{100, tx::Condition::p2wpkh(kB.pk.compressed())};
  t.witnesses[1].witness_script.reset();
  t.witnesses[1].stack = {
      script::encode_wire_sig(Bytes(64, 0x5a), SighashFlag::kSingleAnyPrevOut),
      kB.pk.compressed()};
  EXPECT_EQ(tx::verify_input(t, 1, spent_wpkh, crypto::schnorr_scheme(), 0),
            ScriptError::kBadSignature);
}

TEST(Sighash, AnyPrevOutSignatureSurvivesRebinding) {
  // A floating transaction's signature must stay valid when the input is
  // rebound to a different outpoint — the Daric split/revocation property.
  const Script ws = script::single_key(kA.pk.compressed());
  const tx::Output spent{1000, tx::Condition::p2wsh(ws)};
  for (const auto flag :
       {SighashFlag::kAllAnyPrevOut, SighashFlag::kSingleAnyPrevOut}) {
    tx::Transaction t;
    t.inputs = {{{dummy_txid(42), 0}}};
    t.outputs = {{1000, tx::Condition::p2wpkh(kA.pk.compressed())}};
    const Bytes sig = tx::sign_input(t, 0, kA.sk, crypto::schnorr_scheme(), flag);
    t.witnesses.resize(1);
    t.witnesses[0].witness_script = ws;
    t.witnesses[0].stack = {sig};
    ASSERT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0),
              ScriptError::kOk);
    t.inputs[0].prevout = {dummy_txid(43), 7};  // rebind
    EXPECT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0),
              ScriptError::kOk)
        << "flag=" << static_cast<int>(flag);
  }

  // Without ANYPREVOUT the same rebinding invalidates the signature.
  tx::Transaction t;
  t.inputs = {{{dummy_txid(42), 0}}};
  t.outputs = {{1000, tx::Condition::p2wpkh(kA.pk.compressed())}};
  const Bytes sig =
      tx::sign_input(t, 0, kA.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].witness_script = ws;
  t.witnesses[0].stack = {sig};
  ASSERT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0),
            ScriptError::kOk);
  t.inputs[0].prevout = {dummy_txid(43), 7};
  EXPECT_EQ(tx::verify_input(t, 0, spent, crypto::schnorr_scheme(), 0),
            ScriptError::kFalseTopOfStack);  // digest moved; CHECKSIG fails
}

TEST(SighashCache, VerifyInputAcceptsCachedDigests) {
  const Spend s = make_p2wpkh_spend(kA, 1000);
  const tx::SighashCache cache(s.tx);
  EXPECT_EQ(tx::verify_input(s.tx, 0, s.spent, crypto::schnorr_scheme(), 0, &cache),
            ScriptError::kOk);
}

TEST(P2wpkhSigClaim, ClaimsWellFormedSpendAndDeclinesMismatches) {
  const Spend s = make_p2wpkh_spend(kA, 1000);
  const tx::SighashCache cache(s.tx);
  const auto& scheme = crypto::schnorr_scheme();
  const auto claim = tx::p2wpkh_sig_claim(s.tx, 0, s.spent, scheme, cache);
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->msg, tx::sighash_digest(s.tx, 0, SighashFlag::kAll));
  EXPECT_TRUE(scheme.verify(claim->pk, claim->msg, claim->sig));

  // Wrong pubkey hash: decline, let verify_input report kEqualVerifyFailed.
  Spend wrong_key = make_p2wpkh_spend(kA, 1000);
  wrong_key.tx.witnesses[0].stack[1] = kB.pk.compressed();
  const tx::SighashCache wrong_cache(wrong_key.tx);
  EXPECT_FALSE(
      tx::p2wpkh_sig_claim(wrong_key.tx, 0, wrong_key.spent, scheme, wrong_cache));

  // P2WSH outputs are never claimed for deferral.
  const Script ms = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const tx::Output wsh{1000, tx::Condition::p2wsh(ms)};
  EXPECT_FALSE(tx::p2wpkh_sig_claim(s.tx, 0, wsh, scheme, cache));

  // A tampered signature is still claimed (it is structurally fine) and
  // fails at verification time, exactly like the inline path.
  Spend bad_sig = make_p2wpkh_spend(kA, 1000);
  bad_sig.tx.witnesses[0].stack[0][7] ^= 1;
  const tx::SighashCache bad_cache(bad_sig.tx);
  const auto bad = tx::p2wpkh_sig_claim(bad_sig.tx, 0, bad_sig.spent, scheme, bad_cache);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(scheme.verify(bad->pk, bad->msg, bad->sig));
}

// --- Wire signatures -------------------------------------------------------

TEST(WireSig, EncodeDecodeRoundTrip) {
  const Bytes raw(65, 0x11);
  const Bytes wire = script::encode_wire_sig(raw, SighashFlag::kAllAnyPrevOut);
  EXPECT_EQ(wire.size(), script::kWireSigSize);
  const auto dec = script::decode_wire_sig(wire, 65);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->raw, raw);
  EXPECT_EQ(dec->flag, SighashFlag::kAllAnyPrevOut);
}

TEST(WireSig, BadFlagRejected) {
  Bytes wire(script::kWireSigSize, 0);
  wire.back() = 0x7f;
  EXPECT_FALSE(script::decode_wire_sig(wire, 65).has_value());
}

// --- Serialization & weight ------------------------------------------------

TEST(Weight, CommitTxMatchesAppendixH) {
  // A Daric/GC-style commit: one input spending a 2-of-2 P2WSH via a
  // 71-byte script, one P2WSH output. Appendix H: 224 witness bytes
  // (incl. 2-byte marker), 94 non-witness → weight 600.
  const Script ms = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  tx::Transaction t;
  t.inputs = {{{dummy_txid(11), 0}}};
  t.outputs = {{100, tx::Condition::p2wsh(ms)}};
  const Bytes sa = tx::sign_input(t, 0, kA.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  const Bytes sb = tx::sign_input(t, 0, kB.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].stack = {Bytes{}, sa, sb};
  t.witnesses[0].witness_script = ms;

  const tx::TxSize size = tx::measure(t);
  EXPECT_EQ(size.base, 94u);
  EXPECT_EQ(size.witness(), 224u);
  EXPECT_EQ(size.weight(), 224u + 4 * 94u);
}

TEST(Weight, P2wpkhOutputIs31Bytes) {
  tx::Transaction t;
  t.inputs = {{{dummy_txid(12), 0}}};
  t.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  // base = 4 + 1 + 41 + 1 + 31 + 4 = 82 (Appendix H's standard 1-in/1-out).
  EXPECT_EQ(tx::serialize_base(t).size(), 82u);
}

TEST(Weight, P2wpkhWitnessSpendWeight) {
  const Spend s = make_p2wpkh_spend(kA, 1000);
  const tx::TxSize size = tx::measure(s.tx);
  // marker(2) + count(1) + sig(1+73) + key(1+33) = 111 witness bytes.
  EXPECT_EQ(size.witness(), 111u);
}

TEST(Txid, ExcludesWitness) {
  Spend s = make_p2wpkh_spend(kA, 1000);
  const Hash256 before = s.tx.txid();
  s.tx.witnesses[0].stack[0][3] ^= 0xff;
  EXPECT_EQ(s.tx.txid(), before);
  s.tx.outputs[0].cash = 999;
  EXPECT_NE(s.tx.txid(), before);
}

TEST(Serializer, VarIntBoundaries) {
  Writer w;
  w.varint(0xfc);
  w.varint(0xfd);
  w.varint(0xffff);
  w.varint(0x10000);
  Reader r(w.data());
  EXPECT_EQ(r.varint(), 0xfcu);
  EXPECT_EQ(r.varint(), 0xfdu);
  EXPECT_EQ(r.varint(), 0xffffu);
  EXPECT_EQ(r.varint(), 0x10000u);
  EXPECT_TRUE(r.empty());
}

TEST(Serializer, ReaderUnderrunThrows) {
  Reader r(BytesView{});
  EXPECT_THROW(r.u8(), std::out_of_range);
}

}  // namespace
}  // namespace daric
