// Observability layer: tracer/sink contracts, histogram bucket math, the
// Chrome trace export, and the exact Daric force-close event sequence that
// tools/daric_trace audits against Theorem 1.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/crypto/sig_scheme.h"
#include "src/obs/metrics.h"
#include "src/obs/scenarios.h"
#include "src/obs/sinks.h"
#include "src/obs/tracer.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"

namespace daric {
namespace {

using obs::Event;
using obs::EventKind;

std::optional<std::string> attr_s(const Event& e, const std::string& key) {
  for (const auto& a : e.attrs)
    if (a.key == key && !a.is_int) return a.str;
  return std::nullopt;
}

std::optional<std::int64_t> attr_i(const Event& e, const std::string& key) {
  for (const auto& a : e.attrs)
    if (a.key == key && a.is_int) return a.num;
  return std::nullopt;
}

TEST(Histogram, BucketBoundariesInclusive) {
  obs::Histogram h({0, 10, 20});
  // A sample lands in the first bucket whose bound is >= the value.
  for (std::int64_t v : {-1, 0, 1, 10, 11, 20, 21}) h.observe(v);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // -1, 0   (<= 0)
  EXPECT_EQ(counts[1], 2u);      // 1, 10   (<= 10)
  EXPECT_EQ(counts[2], 2u);      // 11, 20  (<= 20)
  EXPECT_EQ(counts[3], 1u);      // 21      (overflow)
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 62);
  EXPECT_EQ(h.min(), -1);
  EXPECT_EQ(h.max(), 21);
}

TEST(Tracer, DisabledByDefaultEmitsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(3, EventKind::kRoundAdvance, "sim", "", "");
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_TRUE(t.ring_snapshot().empty());

  // Attaching a sink enables tracing; disabling again silences the sink.
  obs::CollectSink sink;
  t.add_sink(&sink);
  EXPECT_TRUE(t.enabled());
  t.emit(4, EventKind::kRoundAdvance, "sim", "", "");
  ASSERT_EQ(sink.events.size(), 1u);
  t.set_enabled(false);
  t.emit(5, EventKind::kRoundAdvance, "sim", "", "");
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(t.emitted(), 1u);
}

TEST(Tracer, EnvironmentDefaultsToNullSink) {
  sim::Environment env(2, crypto::schnorr_scheme());
  env.advance_round();
  env.advance_round();
  EXPECT_FALSE(env.tracer().enabled());
  EXPECT_EQ(env.tracer().emitted(), 0u);
  // Metrics stay on even with tracing off.
  EXPECT_EQ(env.metrics().counter("sim.rounds").value(), 2u);
}

TEST(Scenario, EventOrderingMonotone) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "update");
  ASSERT_TRUE(r.ok) << r.detail;
  ASSERT_FALSE(r.events.empty());
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GT(r.events[i].seq, r.events[i - 1].seq) << "at index " << i;
    EXPECT_GE(r.events[i].round, r.events[i - 1].round) << "at index " << i;
  }
}

TEST(Sinks, ChromeTraceExportIsValidJson) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "force-close");
  ASSERT_TRUE(r.ok) << r.detail;
  const std::string json = obs::chrome_trace_json(r.events);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Braces balance (attrs are flat, so no string ever contains a brace).
  std::ptrdiff_t open = 0, close = 0;
  for (char c : json) {
    if (c == '{') ++open;
    if (c == '}') ++close;
  }
  EXPECT_EQ(open, close);
}

TEST(Scenario, DaricForceCloseExactSequence) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "force-close");
  ASSERT_TRUE(r.ok) << r.detail;

  std::vector<Event> daric_events;
  for (const Event& e : r.events)
    if (e.engine == "daric") daric_events.push_back(e);

  const std::vector<EventKind> expected = {
      EventKind::kChannelState,  // open sn=0
      EventKind::kChannelState,  // updating sn=1
      EventKind::kChannelState,  // updated  sn=1
      EventKind::kChannelState,  // updating sn=2
      EventKind::kChannelState,  // updated  sn=2
      EventKind::kForceClose,    // B publishes revoked state-0 commit
      EventKind::kPunish,        // A posts the revocation
      EventKind::kChannelState,  // closed (A, punished)
      EventKind::kChannelState,  // closed (B, punished)
  };
  ASSERT_EQ(daric_events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(daric_events[i].kind, expected[i]) << "at index " << i;

  EXPECT_EQ(attr_s(daric_events[0], "phase"), "open");
  EXPECT_EQ(attr_i(daric_events[0], "sn"), 0);
  EXPECT_EQ(attr_s(daric_events[4], "phase"), "updated");
  EXPECT_EQ(attr_i(daric_events[4], "sn"), 2);

  const Event& dispute = daric_events[5];
  EXPECT_EQ(dispute.party, "B");
  EXPECT_EQ(attr_i(dispute, "sn"), 0);
  EXPECT_EQ(attr_i(dispute, "revoked"), 1);

  const Event& punish = daric_events[6];
  EXPECT_EQ(punish.party, "A");
  EXPECT_EQ(attr_i(punish, "revoked_state"), 0);
  EXPECT_EQ(attr_i(punish, "latest_sn"), 2);

  EXPECT_EQ(attr_s(daric_events[7], "outcome"), "punished");
  EXPECT_EQ(attr_s(daric_events[8], "outcome"), "punished");

  // Theorem 1: the punishment lands within T - delta rounds of the dispute
  // publication (scenario constants: T = 8, delta = 2).
  const std::int64_t gap = punish.round - dispute.round;
  EXPECT_GE(gap, 0);
  EXPECT_LE(gap, 8 - 2);
}

TEST(Metrics, RegistrySnapshotStructure) {
  obs::Registry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.level").set(-7);
  reg.histogram("a.lat", {1, 2, 4}).observe(3);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"a.level\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"a.lat\""), std::string::npos);
  const std::string text = reg.summary_text();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("a.lat"), std::string::npos);
}

TEST(MessageLog, RingCapEvictsOldestDeterministically) {
  sim::MessageLog log;
  log.set_capacity(3);
  for (int i = 0; i < 5; ++i)
    log.record(static_cast<Round>(i), sim::PartyId::kA, "m" + std::to_string(i));
  EXPECT_EQ(log.count(), 5u);      // total is eviction-proof
  EXPECT_EQ(log.evicted(), 2u);
  ASSERT_EQ(log.records().size(), 3u);
  // Oldest-first iteration over the retained window: m2, m3, m4.
  int expect = 2;
  for (const auto& rec : log) EXPECT_EQ(rec.type, "m" + std::to_string(expect++));

  const std::string jsonl = log.to_jsonl();
  std::size_t lines = 0;
  for (char c : jsonl)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"type\":\"m2\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"type\":\"m0\""), std::string::npos);
}

}  // namespace
}  // namespace daric
