// Observability layer: tracer/sink contracts, histogram bucket math, the
// Chrome trace export, and the exact Daric force-close event sequence that
// tools/daric_trace audits against Theorem 1.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/sig_scheme.h"
#include "src/obs/metrics.h"
#include "src/obs/scenarios.h"
#include "src/obs/sinks.h"
#include "src/obs/span.h"
#include "src/obs/tracer.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"

namespace daric {
namespace {

using obs::Event;
using obs::EventKind;

std::optional<std::string> attr_s(const Event& e, const std::string& key) {
  for (const auto& a : e.attrs)
    if (a.key == key && !a.is_int) return a.str;
  return std::nullopt;
}

std::optional<std::int64_t> attr_i(const Event& e, const std::string& key) {
  for (const auto& a : e.attrs)
    if (a.key == key && a.is_int) return a.num;
  return std::nullopt;
}

TEST(Histogram, LogLinearBucketMath) {
  // Values 0..63 get exact unit buckets: the bound IS the value.
  for (std::int64_t v = 0; v <= 63; ++v)
    EXPECT_EQ(obs::Histogram::bucket_bound(obs::Histogram::bucket_index(v)), v);
  // Negative values collapse into bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_index(-5), 0u);
  // Beyond 63 every value's bucket bound is >= the value and within the
  // documented relative error of it.
  for (std::int64_t v : {std::int64_t{64}, std::int64_t{65}, std::int64_t{100},
                         std::int64_t{127}, std::int64_t{128}, std::int64_t{1000},
                         std::int64_t{4096}, std::int64_t{1} << 20,
                         (std::int64_t{1} << 40) + 12345}) {
    const auto idx = obs::Histogram::bucket_index(v);
    const std::int64_t bound = obs::Histogram::bucket_bound(idx);
    EXPECT_GE(bound, v);
    EXPECT_LE(bound - v, static_cast<std::int64_t>(
                             static_cast<double>(v) * obs::Histogram::kRelativeError) +
                             1)
        << "v=" << v;
  }
  // Bounds are strictly increasing across the whole index range.
  for (std::size_t i = 1; i < obs::Histogram::kBucketCount; ++i)
    ASSERT_GT(obs::Histogram::bucket_bound(i), obs::Histogram::bucket_bound(i - 1))
        << "at index " << i;
}

TEST(Histogram, AggregatesAndSparseSnapshot) {
  obs::Histogram h;
  for (std::int64_t v : {-1, 0, 1, 10, 11, 20, 21}) h.observe(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 62);
  EXPECT_EQ(h.min(), -1);
  EXPECT_EQ(h.max(), 21);
  const auto buckets = h.nonempty_buckets();
  // All values <= 63: exact unit buckets, -1 shares bucket 0 with 0.
  ASSERT_EQ(buckets.size(), 6u);
  EXPECT_EQ(buckets[0], (std::pair<std::int64_t, std::uint64_t>{0, 2}));
  EXPECT_EQ(buckets[1], (std::pair<std::int64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(buckets.back(), (std::pair<std::int64_t, std::uint64_t>{21, 1}));
  std::uint64_t total = 0;
  for (const auto& [bound, n] : buckets) total += n;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, QuantileAccuracyAgainstExactRanks) {
  obs::Histogram h;
  for (std::int64_t v = 1; v <= 10000; ++v) h.observe(v);
  const obs::Histogram::Quantiles qs = h.quantiles();
  const auto check = [](std::int64_t got, std::int64_t exact) {
    EXPECT_GE(got, exact);
    EXPECT_LE(static_cast<double>(got - exact),
              static_cast<double>(exact) * obs::Histogram::kRelativeError + 1.0)
        << "got=" << got << " exact=" << exact;
  };
  check(qs.p50, 5000);
  check(qs.p90, 9000);
  check(qs.p99, 9900);
  check(qs.p999, 9990);
  EXPECT_EQ(h.quantile(1.0), h.quantile(0.9999));
  // Quantiles are monotone and bracketed by min/max's buckets.
  EXPECT_LE(qs.p50, qs.p90);
  EXPECT_LE(qs.p90, qs.p99);
  EXPECT_LE(qs.p99, qs.p999);
}

TEST(Histogram, EmptyQuantilesAreZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  const auto qs = h.quantiles();
  EXPECT_EQ(qs.p999, 0);
  EXPECT_TRUE(h.nonempty_buckets().empty());
}

TEST(Tracer, DisabledByDefaultEmitsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(3, EventKind::kRoundAdvance, "sim", "", "");
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_TRUE(t.ring_snapshot().empty());

  // Attaching a sink enables tracing; disabling again silences the sink.
  obs::CollectSink sink;
  t.add_sink(&sink);
  EXPECT_TRUE(t.enabled());
  t.emit(4, EventKind::kRoundAdvance, "sim", "", "");
  ASSERT_EQ(sink.events.size(), 1u);
  t.set_enabled(false);
  t.emit(5, EventKind::kRoundAdvance, "sim", "", "");
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(t.emitted(), 1u);
}

TEST(Tracer, EnvironmentDefaultsToNullSink) {
  sim::Environment env(2, crypto::schnorr_scheme());
  env.advance_round();
  env.advance_round();
  EXPECT_FALSE(env.tracer().enabled());
  EXPECT_EQ(env.tracer().emitted(), 0u);
  // Metrics stay on even with tracing off.
  EXPECT_EQ(env.metrics().counter("sim.rounds").value(), 2u);
}

TEST(Scenario, EventOrderingMonotone) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "update");
  ASSERT_TRUE(r.ok) << r.detail;
  ASSERT_FALSE(r.events.empty());
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GT(r.events[i].seq, r.events[i - 1].seq) << "at index " << i;
    EXPECT_GE(r.events[i].round, r.events[i - 1].round) << "at index " << i;
  }
}

TEST(Sinks, ChromeTraceExportIsValidJson) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "force-close");
  ASSERT_TRUE(r.ok) << r.detail;
  const std::string json = obs::chrome_trace_json(r.events);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Braces balance (attrs are flat, so no string ever contains a brace).
  std::ptrdiff_t open = 0, close = 0;
  for (char c : json) {
    if (c == '{') ++open;
    if (c == '}') ++close;
  }
  EXPECT_EQ(open, close);
}

TEST(Scenario, DaricForceCloseExactSequence) {
  const obs::ScenarioRun r = obs::run_scenario("daric", "force-close");
  ASSERT_TRUE(r.ok) << r.detail;

  std::vector<Event> daric_events;
  for (const Event& e : r.events)
    if (e.engine == "daric") daric_events.push_back(e);

  const std::vector<EventKind> expected = {
      EventKind::kChannelState,  // open sn=0
      EventKind::kChannelState,  // updating sn=1
      EventKind::kChannelState,  // updated  sn=1
      EventKind::kChannelState,  // updating sn=2
      EventKind::kChannelState,  // updated  sn=2
      EventKind::kForceClose,    // B publishes revoked state-0 commit
      EventKind::kPunish,        // A posts the revocation
      EventKind::kChannelState,  // closed (A, punished)
      EventKind::kChannelState,  // closed (B, punished)
  };
  ASSERT_EQ(daric_events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(daric_events[i].kind, expected[i]) << "at index " << i;

  EXPECT_EQ(attr_s(daric_events[0], "phase"), "open");
  EXPECT_EQ(attr_i(daric_events[0], "sn"), 0);
  EXPECT_EQ(attr_s(daric_events[4], "phase"), "updated");
  EXPECT_EQ(attr_i(daric_events[4], "sn"), 2);

  const Event& dispute = daric_events[5];
  EXPECT_EQ(dispute.party, "B");
  EXPECT_EQ(attr_i(dispute, "sn"), 0);
  EXPECT_EQ(attr_i(dispute, "revoked"), 1);

  const Event& punish = daric_events[6];
  EXPECT_EQ(punish.party, "A");
  EXPECT_EQ(attr_i(punish, "revoked_state"), 0);
  EXPECT_EQ(attr_i(punish, "latest_sn"), 2);

  EXPECT_EQ(attr_s(daric_events[7], "outcome"), "punished");
  EXPECT_EQ(attr_s(daric_events[8], "outcome"), "punished");

  // Theorem 1: the punishment lands within T - delta rounds of the dispute
  // publication (scenario constants: T = 8, delta = 2).
  const std::int64_t gap = punish.round - dispute.round;
  EXPECT_GE(gap, 0);
  EXPECT_LE(gap, 8 - 2);
}

TEST(Metrics, RegistrySnapshotStructure) {
  obs::Registry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.level").set(-7);
  reg.histogram("a.lat").observe(3);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"a.level\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"a.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  const std::string text = reg.summary_text();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("a.lat"), std::string::npos);
}

TEST(Metrics, LookupCountPinsSteadyStateHotPaths) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hot.counter");
  obs::Histogram& h = reg.histogram("hot.hist");
  const std::uint64_t warm = reg.lookup_count();
  EXPECT_EQ(warm, 2u);
  // The cached-handle discipline: a million events, zero further lookups.
  for (int i = 0; i < 1000; ++i) {
    c.inc();
    h.observe(i);
  }
  EXPECT_EQ(reg.lookup_count(), warm);
  // A repeated name lookup is counted (that is what the tests pin).
  reg.counter("hot.counter").inc();
  EXPECT_EQ(reg.lookup_count(), warm + 1);
  EXPECT_EQ(c.value(), 1001u);
}

TEST(Metrics, GaugeSetIsLastWriterWinsAfterAdds) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("g");
  g.add(5);
  g.add(7);
  EXPECT_EQ(g.value(), 12);
  g.set(3);  // set() resets every stripe, not just the caller's
  EXPECT_EQ(g.value(), 3);
  g.add(-4);
  EXPECT_EQ(g.value(), -1);
}

TEST(Metrics, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("daric.updates").inc(2);
  reg.gauge("tower.channels").set(9);
  reg.histogram("daric.onchain_weight").observe(100);
  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("# TYPE daric_updates counter"), std::string::npos);
  EXPECT_NE(text.find("daric_updates 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tower_channels gauge"), std::string::npos);
  EXPECT_NE(text.find("tower_channels 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE daric_onchain_weight histogram"), std::string::npos);
  EXPECT_NE(text.find("daric_onchain_weight_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("daric_onchain_weight_sum 100"), std::string::npos);
  EXPECT_NE(text.find("daric_onchain_weight_count 1"), std::string::npos);
  // Names are sanitized: no '.' survives into the exposition.
  EXPECT_EQ(text.find("daric.updates"), std::string::npos);
}

TEST(Spans, DisabledByDefaultRecordsNothing) {
  obs::set_spans_enabled(false);
  EXPECT_FALSE(obs::spans_enabled());
  {
    OBS_SPAN("test.disabled_span");
  }
  const std::string json = obs::profile_registry().snapshot_json();
  EXPECT_EQ(json.find("test.disabled_span"), std::string::npos);
}

TEST(Spans, EnabledSpansRecordDurations) {
  obs::set_spans_enabled(true);
  for (int i = 0; i < 3; ++i) {
    OBS_SPAN("test.enabled_span");
  }
  obs::set_spans_enabled(false);
  obs::Histogram& h = obs::span_histogram("test.enabled_span");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.sum(), 0);
  const std::string json = obs::profile_registry().snapshot_json();
  EXPECT_NE(json.find("span.test.enabled_span_ns"), std::string::npos);
}

TEST(Sinks, RotatedPathNaming) {
  using obs::JsonlSink;
  EXPECT_EQ(JsonlSink::rotated_path("trace.jsonl", 1), "trace.1.jsonl");
  EXPECT_EQ(JsonlSink::rotated_path("dir/run.trace.jsonl", 2), "dir/run.trace.2.jsonl");
  EXPECT_EQ(JsonlSink::rotated_path("dir.v2/trace", 3), "dir.v2/trace.3");
  EXPECT_EQ(JsonlSink::rotated_path("trace", 1), "trace.1");
}

TEST(Sinks, JsonlRotationAndSampling) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/rot.jsonl";
  obs::Event e;
  e.kind = EventKind::kRoundAdvance;
  e.engine = "sim";
  e.seq = 15;  // widest seq the loop produces, so 3 lines always fit
  const std::size_t line_len = obs::to_json(e).size() + 1;
  {
    obs::JsonlSink::Options opts;
    opts.max_bytes = 3 * line_len;  // 3 lines per file
    opts.keep = 2;
    opts.sample_every = 2;  // every other event
    obs::JsonlSink sink(path, opts);
    for (int i = 0; i < 16; ++i) {  // 16 offered -> 8 written -> 2 rotations
      e.seq = static_cast<std::uint64_t>(i);
      sink.on_event(e);
    }
    sink.flush();
    EXPECT_EQ(sink.rotations(), 2u);
  }
  // Every surviving file is a self-contained JSONL stream: whole lines only.
  for (const std::string& p :
       {path, obs::JsonlSink::rotated_path(path, 1), obs::JsonlSink::rotated_path(path, 2)}) {
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      EXPECT_EQ(line.front(), '{') << p;
      EXPECT_EQ(line.back(), '}') << p;
    }
    EXPECT_GT(lines, 0u) << p;
    EXPECT_LE(lines, 3u) << p;
  }
  std::remove(path.c_str());
  std::remove(obs::JsonlSink::rotated_path(path, 1).c_str());
  std::remove(obs::JsonlSink::rotated_path(path, 2).c_str());
}

TEST(MessageLog, RingCapEvictsOldestDeterministically) {
  sim::MessageLog log;
  log.set_capacity(3);
  for (int i = 0; i < 5; ++i)
    log.record(static_cast<Round>(i), sim::PartyId::kA, "m" + std::to_string(i));
  EXPECT_EQ(log.count(), 5u);      // total is eviction-proof
  EXPECT_EQ(log.evicted(), 2u);
  ASSERT_EQ(log.records().size(), 3u);
  // Oldest-first iteration over the retained window: m2, m3, m4.
  int expect = 2;
  for (const auto& rec : log) EXPECT_EQ(rec.type, "m" + std::to_string(expect++));

  const std::string jsonl = log.to_jsonl();
  std::size_t lines = 0;
  for (char c : jsonl)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"type\":\"m2\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"type\":\"m0\""), std::string::npos);
}

}  // namespace
}  // namespace daric
