// Crash recovery (persistence snapshots + restored monitors), the
// multi-channel watchtower service, and off-chain sub-channels.
#include <gtest/gtest.h>

#include "src/channel/tower_service.h"
#include "src/daric/persistence.h"
#include "src/daric/subchannels.h"
#include "src/daric/watchtower.h"
#include "src/lightning/watchtower.h"
#include "src/tx/serializer.h"

namespace daric {
namespace {

using channel::StateVec;
using daricch::CloseOutcome;
using sim::PartyId;

constexpr Round kDelta = 2;

channel::ChannelParams make_params(const std::string& id) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = 6;
  return p;
}

// --- Persistence ---------------------------------------------------------

TEST(Persistence, SnapshotRoundTrips) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-1"));
  ASSERT_TRUE(ch.create());
  const auto h = channel::make_htlc_secret("p-h");
  ASSERT_TRUE(ch.update({390'000, 600'000, {{10'000, h.payment_hash, true, 4}}}));

  const daricch::ChannelSnapshot snap = daricch::snapshot_party(ch.party(PartyId::kB));
  const Bytes blob = daricch::serialize_snapshot(snap);
  const daricch::ChannelSnapshot back = daricch::deserialize_snapshot(blob);

  EXPECT_EQ(back.params.id, snap.params.id);
  EXPECT_EQ(back.sn, snap.sn);
  EXPECT_TRUE(back.st == snap.st);
  EXPECT_EQ(back.cm_own.txid(), snap.cm_own.txid());
  EXPECT_EQ(back.split_body.txid(), snap.split_body.txid());
  EXPECT_EQ(back.theta_sig, snap.theta_sig);
  EXPECT_EQ(back.cm_own_script, snap.cm_own_script);
}

TEST(Persistence, CorruptBlobRejected) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-2"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  Bytes blob = daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kA)));
  blob.resize(blob.size() / 2);  // truncated
  EXPECT_THROW(daricch::deserialize_snapshot(blob), std::exception);
  Bytes extended = daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kA)));
  extended.push_back(0x00);  // trailing garbage
  EXPECT_THROW(daricch::deserialize_snapshot(extended), std::invalid_argument);
}

TEST(Persistence, CorruptionFuzzNeverCrashesOrMisparses) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-fuzz"));
  ASSERT_TRUE(ch.create());
  const auto h = channel::make_htlc_secret("fuzz-h");
  ASSERT_TRUE(ch.update({390'000, 600'000, {{10'000, h.payment_hash, true, 4}}}));
  const Bytes blob = daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kB)));

  // Every truncation must throw (no partial reads past the end).
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    Bytes cut(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(daricch::deserialize_snapshot(cut), std::exception) << "len " << len;
  }

  // Single-byte corruption at every offset: the parser must either throw
  // or return a snapshot that still round-trips — never crash, never hang
  // allocating absurd counts.
  int rejected = 0, absorbed = 0;
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xff}}) {
      Bytes mutated = blob;
      mutated[pos] ^= flip;
      try {
        const daricch::ChannelSnapshot s = daricch::deserialize_snapshot(mutated);
        // Accepted: the flipped byte must land in a value field, not
        // structure — re-serializing must reproduce the mutated blob.
        EXPECT_EQ(daricch::serialize_snapshot(s), mutated) << "pos " << pos;
        ++absorbed;
      } catch (const std::exception&) {
        ++rejected;
      }
    }
  }
  // The format is mostly fixed-width values, but structural bytes (counts,
  // opcodes, condition tags, lengths) must be validated.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(absorbed, 0);
}

TEST(Persistence, SnapshotSizeIsConstantInUpdates) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-3"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  const std::size_t size1 =
      daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kA))).size();
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(ch.update({450'000 - i, 550'000 + i, {}}));
  const std::size_t size21 =
      daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kA))).size();
  EXPECT_EQ(size1, size21);  // the durable footprint *is* Table 1's O(1)
}

TEST(Persistence, RestoredPartyPunishesAfterCrash) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-4"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  ASSERT_TRUE(ch.update({300'000, 700'000, {}}));

  // B "crashes": only the serialized blob survives.
  const Bytes blob = daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kB)));
  daricch::RestoredParty restored(env, daricch::deserialize_snapshot(blob));
  env.add_round_hook([&] { restored.on_round(); });

  ch.publish_old_commit(PartyId::kA, 0);
  for (int r = 0; r < 20 && !restored.done(); ++r) env.advance_round();
  EXPECT_EQ(restored.outcome(), CloseOutcome::kPunished);
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->outputs[0].cash, 1'000'000);
}

TEST(Persistence, RestoredPartyForceClosesWithLatestState) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("persist-5"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({250'000, 750'000, {}}));
  const Bytes blob = daricch::serialize_snapshot(daricch::snapshot_party(ch.party(PartyId::kA)));
  daricch::RestoredParty restored(env, daricch::deserialize_snapshot(blob));
  env.add_round_hook([&] { restored.on_round(); });
  restored.force_close();
  for (int r = 0; r < 30 && !restored.done(); ++r) env.advance_round();
  EXPECT_EQ(restored.outcome(), CloseOutcome::kNonCollaborative);
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto split = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->outputs[0].cash, 250'000);
}

// --- Tower service -----------------------------------------------------

TEST(TowerService, WatchesManyChannelsAndAggregatesStorage) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  channel::TowerService service;
  std::vector<std::unique_ptr<daricch::DaricChannel>> channels;
  const int n_channels = 5;
  for (int i = 0; i < n_channels; ++i) {
    channels.push_back(std::make_unique<daricch::DaricChannel>(
        env, make_params("svc-" + std::to_string(i))));
    ASSERT_TRUE(channels.back()->create());
    ASSERT_TRUE(channels.back()->update({450'000, 550'000, {}}));
    auto& ch = *channels.back();
    auto tower = std::make_unique<daricch::DaricWatchtower>(
        ch.params(), PartyId::kB, ch.funding_outpoint(), ch.party(PartyId::kA).pub(),
        ch.party(PartyId::kB).pub());
    tower->update_package(daricch::make_watchtower_package(ch.party(PartyId::kB)));
    service.add(std::move(tower));
  }
  env.add_round_hook([&] { service.on_round(env.ledger()); });

  const std::size_t storage_1_update = service.total_storage_bytes();
  // Many more updates: aggregate storage must not grow (O(#channels) only).
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < n_channels; ++i) {
      ASSERT_TRUE(channels[static_cast<std::size_t>(i)]->update({450'000 - u, 550'000 + u, {}}));
      service.tower(static_cast<std::size_t>(i));
      static_cast<daricch::DaricWatchtower&>(service.tower(static_cast<std::size_t>(i)))
          .update_package(daricch::make_watchtower_package(
              channels[static_cast<std::size_t>(i)]->party(PartyId::kB)));
    }
  }
  EXPECT_EQ(service.total_storage_bytes(), storage_1_update);

  // Two of the five channels turn fraudulent; only those towers react.
  channels[1]->publish_old_commit(PartyId::kA, 2);
  channels[3]->publish_old_commit(PartyId::kA, 0);
  env.advance_rounds(10);
  EXPECT_EQ(service.reactions(), 2);
  EXPECT_TRUE(service.tower(1).reacted());
  EXPECT_TRUE(service.tower(3).reacted());
  EXPECT_FALSE(service.tower(0).reacted());
}

// --- Sub-channels (Sec. 8 "Other applications") -------------------------

struct SubFixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  daricch::DaricChannel ch;
  daricch::SubchannelPackage pkg;

  SubFixture()
      : ch(env, make_params("parent")),
        pkg((ch.create(), ch.update({450'000, 550'000, {}}),
             daricch::build_subchannels(ch.party(PartyId::kA), ch.party(PartyId::kB),
                                        ch.params(), 300'000, 700'000))) {}

  // Publishes the parent commit and lands the sub-channel split on-chain.
  tx::OutPoint enforce_split() {
    ch.party(PartyId::kA).force_close();
    env.advance_rounds(kDelta + 2);
    const auto commit = env.ledger().spender_of(ch.funding_outpoint());
    const script::Script parent_script = daricch::commit_script(
        ch.party(PartyId::kA).pub().sp, ch.party(PartyId::kB).pub().sp,
        ch.party(PartyId::kA).pub().rv, ch.party(PartyId::kB).pub().rv, ch.params().s0 + 1,
        static_cast<std::uint32_t>(ch.params().t_punish));
    const Round c = *env.ledger().confirmation_round(commit->txid());
    while (env.now() < c + ch.params().t_punish) env.advance_round();
    daricch::bind_subchannel_split(pkg, {commit->txid(), 0}, parent_script);
    env.ledger().post_with_delay(pkg.split, 0);
    env.advance_rounds(2);
    return {pkg.split.txid(), 0};
  }
};

TEST(Subchannels, SplitCreatesTwoFundingOutputs) {
  SubFixture f;
  EXPECT_EQ(f.pkg.split.outputs.size(), 2u);
  EXPECT_EQ(f.pkg.split.outputs[0].cash + f.pkg.split.outputs[1].cash, 1'000'000);
  const tx::OutPoint op = f.enforce_split();
  ASSERT_TRUE(f.env.ledger().is_confirmed(op.txid));
  EXPECT_TRUE(f.env.ledger().is_unspent({op.txid, 0}));
  EXPECT_TRUE(f.env.ledger().is_unspent({op.txid, 1}));
}

TEST(Subchannels, FloatingCommitBindsToItsOwnFunding) {
  SubFixture f;
  const tx::OutPoint op = f.enforce_split();
  daricch::bind_subchannel_commit(f.pkg, 0, {op.txid, 0});
  f.env.ledger().post_with_delay(f.pkg.subs[0].commit, 0);
  f.env.advance_rounds(2);
  EXPECT_TRUE(f.env.ledger().is_confirmed(f.pkg.subs[0].commit.txid()));
}

TEST(Subchannels, CommitCannotSpendTheOtherSubchannelsFunding) {
  // The paper's key-separation requirement: sub-channel 0's commit must not
  // be able to claim sub-channel 1's funding output.
  SubFixture f;
  const tx::OutPoint op = f.enforce_split();
  daricch::bind_subchannel_commit(f.pkg, 0, {op.txid, 1});  // wrong vout!
  f.env.ledger().post_with_delay(f.pkg.subs[0].commit, 0);
  f.env.advance_rounds(2);
  EXPECT_EQ(f.env.ledger().post_result(f.pkg.subs[0].commit.txid()),
            ledger::TxError::kBadWitness);
}

TEST(Subchannels, RejectsMismatchedCapacities) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("parent-bad"));
  ASSERT_TRUE(ch.create());
  EXPECT_THROW(daricch::build_subchannels(ch.party(PartyId::kA), ch.party(PartyId::kB),
                                          ch.params(), 1, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace daric
