// Unit tests for the from-scratch crypto substrate.
#include <gtest/gtest.h>

#include <memory>
#include <span>

#include "src/crypto/adaptor.h"
#include "src/crypto/ct.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/hmac.h"
#include "src/crypto/keys.h"
#include "src/crypto/ripemd160.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sig_scheme.h"
#include "src/util/hex.h"

namespace daric {
namespace {

using crypto::Fe;
using crypto::Point;
using crypto::Scalar;
using crypto::U256;

Bytes str_bytes(std::string_view s) {
  return Bytes(reinterpret_cast<const Byte*>(s.data()),
               reinterpret_cast<const Byte*>(s.data()) + s.size());
}

// --- Constant-time comparison helpers ---------------------------------------

TEST(ConstantTime, CtEqualBytes) {
  const Bytes a = str_bytes("0123456789abcdef0123456789abcdef");
  Bytes b = a;
  EXPECT_TRUE(crypto::ct_equal(a, b));
  EXPECT_TRUE(crypto::ct_equal(Bytes{}, Bytes{}));

  b.front() ^= 0x01;  // mismatch in the first byte
  EXPECT_FALSE(crypto::ct_equal(a, b));
  b = a;
  b.back() ^= 0x80;  // mismatch in the last byte
  EXPECT_FALSE(crypto::ct_equal(a, b));

  // Length mismatch is never equal, even on a shared prefix.
  EXPECT_FALSE(crypto::ct_equal(a, BytesView(a).subspan(0, a.size() - 1)));
}

TEST(ConstantTime, CtIsZero) {
  EXPECT_TRUE(crypto::ct_is_zero(Bytes{}));
  EXPECT_TRUE(crypto::ct_is_zero(Bytes(32, 0)));
  Bytes b(32, 0);
  b[31] = 1;
  EXPECT_FALSE(crypto::ct_is_zero(b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(crypto::ct_is_zero(b));
}

TEST(ConstantTime, CtEqualScalar) {
  const Scalar x = crypto::derive_keypair("ct/x").sk;
  const Scalar y = crypto::derive_keypair("ct/y").sk;
  EXPECT_TRUE(crypto::ct_equal(x, x));
  EXPECT_FALSE(crypto::ct_equal(x, y));
  EXPECT_TRUE(crypto::ct_equal(Scalar(0), Scalar(0)));
  EXPECT_FALSE(crypto::ct_equal(Scalar(0), Scalar(1)));
}

// --- SHA-256 (FIPS 180-4 vectors) ------------------------------------------

TEST(Sha256, EmptyVector) {
  EXPECT_EQ(crypto::Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(crypto::Sha256::hash(str_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(crypto::Sha256::hash(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  crypto::Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = str_bytes("the quick brown fox jumps over the lazy dog and more data");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    crypto::Sha256 h;
    h.update({data.data(), split});
    h.update({data.data() + split, data.size() - split});
    EXPECT_EQ(h.finalize(), crypto::Sha256::hash(data));
  }
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const Bytes d = str_bytes("x");
  EXPECT_NE(crypto::Sha256::double_hash(d), crypto::Sha256::hash(d));
  EXPECT_EQ(crypto::Sha256::double_hash(d),
            crypto::Sha256::hash(crypto::Sha256::hash(d).view()));
}

TEST(Sha256, TaggedHashDomainSeparates) {
  const Bytes d = str_bytes("msg");
  EXPECT_NE(crypto::Sha256::tagged("a", d), crypto::Sha256::tagged("b", d));
}

// --- RIPEMD-160 (ISO test vectors) ------------------------------------------

TEST(Ripemd160, StandardVectors) {
  EXPECT_EQ(to_hex(crypto::ripemd160({}).view()),
            "9c1185a5c5e9fc54612808977ee8f548b2258d31");
  EXPECT_EQ(to_hex(crypto::ripemd160(str_bytes("abc")).view()),
            "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
  EXPECT_EQ(to_hex(crypto::ripemd160(str_bytes("message digest")).view()),
            "5d0689ef49d2fae572b881b123a85ffa21595f36");
  EXPECT_EQ(to_hex(crypto::ripemd160(str_bytes(
                "abcdefghijklmnopqrstuvwxyz")).view()),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
}

TEST(Ripemd160, Hash160IsRipemdOfSha) {
  const Bytes d = str_bytes("pubkey");
  EXPECT_EQ(crypto::hash160(d), crypto::ripemd160(crypto::Sha256::hash(d).view()));
}

// --- HMAC-SHA256 (RFC 4231) ---------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(crypto::hmac_sha256(key, str_bytes("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(crypto::hmac_sha256(str_bytes("Jefe"),
                                str_bytes("what do ya want for nothing?")).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(crypto::hmac_sha256(key, str_bytes(
                "Test Using Larger Than Block-Size Key - Hash Key First")).hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- U256 ---------------------------------------------------------------

TEST(U256Test, ByteRoundTrip) {
  const U256 v = U256::from_hex("0123456789abcdef0011223344556677fedcba98765432100123456789abcdef");
  EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
}

TEST(U256Test, AddCarry) {
  U256 max;
  max.limb = {~0ull, ~0ull, ~0ull, ~0ull};
  U256 out;
  EXPECT_EQ(crypto::add_with_carry(max, U256(1), out), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256Test, SubBorrow) {
  U256 out;
  EXPECT_EQ(crypto::sub_with_borrow(U256(0), U256(1), out), 1u);
  EXPECT_EQ(crypto::sub_with_borrow(U256(5), U256(3), out), 0u);
  EXPECT_EQ(out, U256(2));
}

TEST(U256Test, MulFull) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const U256 v(~0ull);
  const crypto::U512 p = crypto::mul_full(v, v);
  EXPECT_EQ(p.limb[0], 1ull);
  EXPECT_EQ(p.limb[1], ~0ull - 1);
  EXPECT_EQ(p.limb[2], 0ull);
}

TEST(U256Test, Ordering) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_LT(U256(~0ull), U256(0, 1, 0, 0));
  EXPECT_GT(U256(0, 0, 0, 1), U256(~0ull, ~0ull, ~0ull, 0));
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256(0).bit_length(), 0u);
  EXPECT_EQ(U256(1).bit_length(), 1u);
  EXPECT_EQ(U256(0, 0, 0, 1ull << 63).bit_length(), 256u);
}

TEST(U256Test, Shr) {
  const U256 v = U256::from_hex("ff00000000000000000000000000000000");
  EXPECT_EQ(crypto::shr(v, 8), U256::from_hex("ff000000000000000000000000000000"));
}

// --- Field & scalar -------------------------------------------------------

TEST(FieldTest, AddSubInverse) {
  const Fe a = Fe::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("a")).view());
  const Fe b = Fe::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("b")).view());
  EXPECT_EQ(a + b - b, a);
  EXPECT_EQ((a - a), Fe(0));
}

TEST(FieldTest, MulInverse) {
  const Fe a = Fe::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("z")).view());
  EXPECT_EQ(a * a.inv(), Fe(1));
}

TEST(FieldTest, SqrtRoundTrip) {
  const Fe a = Fe::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("sq")).view());
  const Fe sq = a.sqr();
  Fe root;
  ASSERT_TRUE(sq.sqrt(root));
  EXPECT_TRUE(root == a || root == a.neg());
}

TEST(FieldTest, NonResidueRejected) {
  // -1 is a non-residue mod p (p ≡ 3 mod 4).
  Fe root;
  EXPECT_FALSE(Fe(1).neg().sqrt(root));
}

TEST(ScalarTest, Arithmetic) {
  const Scalar a = Scalar::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("s1")).view());
  const Scalar b = Scalar::from_be_bytes_reduce(crypto::Sha256::hash(str_bytes("s2")).view());
  EXPECT_EQ(a + b - b, a);
  EXPECT_EQ(a * a.inv(), Scalar(1));
  EXPECT_EQ(a + a.neg(), Scalar(0));
}

TEST(ScalarTest, ReductionIsCanonical) {
  // Order + 5 reduces to 5.
  U256 v = Scalar::order();
  U256 out;
  crypto::add_with_carry(v, U256(5), out);
  EXPECT_EQ(Scalar::from_be_bytes_reduce(out.to_be_bytes()), Scalar(5));
}

// --- Curve points --------------------------------------------------------

TEST(PointTest, GeneratorOnCurve) {
  const Point g = Point::generator();
  EXPECT_FALSE(g.is_infinity());
  EXPECT_EQ(g.y().sqr(), g.x().sqr() * g.x() + Fe(7));
}

TEST(PointTest, AdditionMatchesScalarMul) {
  const Point g = Point::generator();
  EXPECT_EQ(g + g, g * Scalar(2));
  EXPECT_EQ(g + g + g, g * Scalar(3));
  EXPECT_EQ(g.dbl(), g * Scalar(2));
}

TEST(PointTest, MulGenMatchesGenericMul) {
  for (int i = 1; i <= 20; ++i) {
    const Scalar k = Scalar::from_be_bytes_reduce(
        crypto::Sha256::hash(str_bytes("k" + std::to_string(i))).view());
    EXPECT_EQ(Point::mul_gen(k), Point::generator() * k);
  }
}

TEST(PointTest, NegCancels) {
  const Point p = Point::mul_gen(Scalar(42));
  EXPECT_TRUE((p + p.neg()).is_infinity());
}

TEST(PointTest, InfinityIdentity) {
  const Point p = Point::mul_gen(Scalar(7));
  EXPECT_EQ(p + Point(), p);
  EXPECT_EQ(Point() + p, p);
}

TEST(PointTest, CompressedRoundTrip) {
  for (int i = 1; i <= 10; ++i) {
    const Point p = Point::mul_gen(Scalar(static_cast<std::uint64_t>(i * 1234567)));
    const auto back = Point::from_compressed(p.compressed());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

TEST(PointTest, BadCompressedRejected) {
  Bytes junk(33, 0xff);
  junk[0] = 0x02;
  EXPECT_FALSE(Point::from_compressed(junk).has_value());
  EXPECT_FALSE(Point::from_compressed(Bytes{0x04}).has_value());
}

TEST(PointTest, ScalarMulDistributes) {
  const Scalar a(12345), b(67890);
  EXPECT_EQ(Point::mul_gen(a + b), Point::mul_gen(a) + Point::mul_gen(b));
}

// --- Schnorr ----------------------------------------------------------------

TEST(Schnorr, SignVerify) {
  const auto kp = crypto::derive_keypair("schnorr-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("hello"));
  const Bytes sig = crypto::schnorr_sign(kp.sk, msg);
  EXPECT_EQ(sig.size(), crypto::kSchnorrSigSize);
  EXPECT_TRUE(crypto::schnorr_verify(kp.pk, msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  const auto kp = crypto::derive_keypair("schnorr-test");
  const Bytes sig = crypto::schnorr_sign(kp.sk, crypto::Sha256::hash(str_bytes("m1")));
  EXPECT_FALSE(crypto::schnorr_verify(kp.pk, crypto::Sha256::hash(str_bytes("m2")), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const auto kp = crypto::derive_keypair("schnorr-test");
  const auto other = crypto::derive_keypair("other");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  EXPECT_FALSE(crypto::schnorr_verify(other.pk, msg, crypto::schnorr_sign(kp.sk, msg)));
}

TEST(Schnorr, RejectsMalleatedSignature) {
  const auto kp = crypto::derive_keypair("schnorr-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  Bytes sig = crypto::schnorr_sign(kp.sk, msg);
  for (std::size_t i = 0; i < sig.size(); i += 9) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(crypto::schnorr_verify(kp.pk, msg, bad)) << "byte " << i;
  }
}

TEST(Schnorr, DeterministicSignatures) {
  const auto kp = crypto::derive_keypair("schnorr-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  EXPECT_EQ(crypto::schnorr_sign(kp.sk, msg), crypto::schnorr_sign(kp.sk, msg));
}

// --- ECDSA ----------------------------------------------------------------

TEST(Ecdsa, SignVerify) {
  const auto kp = crypto::derive_keypair("ecdsa-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("hello"));
  const Bytes sig = crypto::ecdsa_sign(kp.sk, msg);
  EXPECT_EQ(sig.size(), crypto::kEcdsaSigSize);
  EXPECT_TRUE(crypto::ecdsa_verify(kp.pk, msg, sig));
}

TEST(Ecdsa, LowS) {
  const auto kp = crypto::derive_keypair("ecdsa-test");
  for (int i = 0; i < 8; ++i) {
    const Hash256 msg = crypto::Sha256::hash(str_bytes("m" + std::to_string(i)));
    const Bytes sig = crypto::ecdsa_sign(kp.sk, msg);
    const U256 s = U256::from_be_bytes(BytesView(sig).subspan(32));
    EXPECT_LE(s, crypto::shr(Scalar::order(), 1));
  }
}

TEST(Ecdsa, RejectsTamper) {
  const auto kp = crypto::derive_keypair("ecdsa-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  Bytes sig = crypto::ecdsa_sign(kp.sk, msg);
  sig[5] ^= 1;
  EXPECT_FALSE(crypto::ecdsa_verify(kp.pk, msg, sig));
}

// --- Adaptor signatures -------------------------------------------------

TEST(Adaptor, PreSignAdaptExtract) {
  const auto signer = crypto::derive_keypair("adaptor-signer");
  const auto witness = crypto::derive_keypair("adaptor-witness");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("commit"));

  const auto pre = crypto::adaptor_pre_sign(signer.sk, msg, witness.pk);
  EXPECT_TRUE(crypto::adaptor_pre_verify(signer.pk, msg, witness.pk, pre));

  const Bytes sig = crypto::adaptor_adapt(pre, witness.sk);
  EXPECT_TRUE(crypto::schnorr_verify(signer.pk, msg, sig));

  EXPECT_EQ(crypto::adaptor_extract(sig, pre), witness.sk);
}

TEST(Adaptor, PreSigIsNotAValidSignature) {
  const auto signer = crypto::derive_keypair("adaptor-signer");
  const auto witness = crypto::derive_keypair("adaptor-witness");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("commit"));
  const auto pre = crypto::adaptor_pre_sign(signer.sk, msg, witness.pk);
  const Bytes as_sig = concat({pre.r_hat.compressed(), pre.s_hat.to_be_bytes()});
  EXPECT_FALSE(crypto::schnorr_verify(signer.pk, msg, as_sig));
}

TEST(Adaptor, PreVerifyRejectsWrongStatement) {
  const auto signer = crypto::derive_keypair("adaptor-signer");
  const auto witness = crypto::derive_keypair("adaptor-witness");
  const auto wrong = crypto::derive_keypair("adaptor-wrong");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("commit"));
  const auto pre = crypto::adaptor_pre_sign(signer.sk, msg, witness.pk);
  EXPECT_FALSE(crypto::adaptor_pre_verify(signer.pk, msg, wrong.pk, pre));
}

// --- Scheme abstraction ------------------------------------------------

TEST(SigScheme, SchnorrAndEcdsaInterchangeable) {
  const auto kp = crypto::derive_keypair("scheme-test");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  for (const crypto::SignatureScheme* s :
       {&crypto::schnorr_scheme(), &crypto::ecdsa_scheme()}) {
    const Bytes sig = s->sign(kp.sk, msg);
    EXPECT_EQ(sig.size(), s->signature_size());
    EXPECT_TRUE(s->verify(kp.pk, msg, sig)) << s->name();
  }
}

TEST(SigScheme, AdaptorSupportFlags) {
  EXPECT_TRUE(crypto::schnorr_scheme().supports_adaptor());
  EXPECT_FALSE(crypto::ecdsa_scheme().supports_adaptor());
}

TEST(SigScheme, CountingSchemeCounts) {
  crypto::op_counters().reset();
  crypto::CountingScheme counting(crypto::schnorr_scheme());
  const auto kp = crypto::derive_keypair("count");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("m"));
  const Bytes sig = counting.sign(kp.sk, msg);
  counting.verify(kp.pk, msg, sig);
  counting.verify(kp.pk, msg, sig);
  EXPECT_EQ(crypto::op_counters().signs.load(), 1u);
  EXPECT_EQ(crypto::op_counters().verifies.load(), 2u);
}

// Deterministic key derivation: distinct labels, distinct keys.
TEST(Keys, DistinctLabelsDistinctKeys) {
  EXPECT_FALSE(crypto::derive_keypair("x").sk == crypto::derive_keypair("y").sk);
  EXPECT_EQ(crypto::derive_keypair("x").sk, crypto::derive_keypair("x").sk);
}

// Algebraic-law sweeps over pseudo-random elements.
class AlgebraSweep : public ::testing::TestWithParam<int> {
 protected:
  Fe fe(const std::string& label) const {
    return Fe::from_be_bytes_reduce(
        crypto::Sha256::hash(str_bytes(label + std::to_string(GetParam()))).view());
  }
  Scalar sc(const std::string& label) const {
    return Scalar::from_be_bytes_reduce(
        crypto::Sha256::hash(str_bytes(label + std::to_string(GetParam()))).view());
  }
};

TEST_P(AlgebraSweep, FieldRingLaws) {
  const Fe a = fe("a"), b = fe("b"), c = fe("c");
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a * Fe(1), a);
  EXPECT_EQ(a + Fe(0), a);
}

TEST_P(AlgebraSweep, FieldInverseAndSqrt) {
  const Fe a = fe("inv");
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inv(), Fe(1));
    EXPECT_EQ(a.inv().inv(), a);
  }
  Fe root;
  ASSERT_TRUE(a.sqr().sqrt(root));
  EXPECT_EQ(root.sqr(), a.sqr());
}

TEST_P(AlgebraSweep, ScalarFieldLaws) {
  const Scalar a = sc("x"), b = sc("y");
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a - b, (b - a).neg());
  if (!b.is_zero()) {
    EXPECT_EQ(a * b * b.inv(), a);
  }
}

TEST_P(AlgebraSweep, GroupHomomorphism) {
  // φ(k) = k·G is a homomorphism: φ(a+b) = φ(a) + φ(b), φ(ab) = a·φ(b).
  const Scalar a = sc("g1"), b = sc("g2");
  EXPECT_EQ(Point::mul_gen(a + b), Point::mul_gen(a) + Point::mul_gen(b));
  EXPECT_EQ(Point::mul_gen(a * b), Point::mul_gen(b) * a);
  EXPECT_TRUE((Point::mul_gen(a) + Point::mul_gen(a.neg())).is_infinity());
}

TEST_P(AlgebraSweep, PointAdditionLaws) {
  const Point p = Point::mul_gen(sc("p"));
  const Point q = Point::mul_gen(sc("q"));
  const Point r = Point::mul_gen(sc("r"));
  EXPECT_EQ(p + q, q + p);
  EXPECT_EQ((p + q) + r, p + (q + r));
  EXPECT_EQ(p + p, p.dbl());
}

INSTANTIATE_TEST_SUITE_P(Random, AlgebraSweep, ::testing::Range(0, 8));

class SchnorrSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrSweep, RoundTripManyKeys) {
  const int i = GetParam();
  const auto kp = crypto::derive_keypair("sweep" + std::to_string(i));
  const Hash256 msg = crypto::Sha256::hash(str_bytes("msg" + std::to_string(i)));
  EXPECT_TRUE(crypto::schnorr_verify(kp.pk, msg, crypto::schnorr_sign(kp.sk, msg)));
  EXPECT_TRUE(crypto::ecdsa_verify(kp.pk, msg, crypto::ecdsa_sign(kp.sk, msg)));
}

INSTANTIATE_TEST_SUITE_P(Keys, SchnorrSweep, ::testing::Range(0, 12));

// --- wNAF / Strauss–Shamir cross-checks -----------------------------------
//
// The verification hot path (wNAF tables, Strauss–Shamir interleaving,
// batch RLC) must agree with the reference bit-at-a-time ladder on random
// inputs. Scalars are derived by hashing a counter so failures reproduce.

Scalar sweep_scalar(std::string_view label, int i) {
  return Scalar::from_be_bytes_reduce(
      crypto::Sha256::hash(str_bytes(std::string(label) + std::to_string(i))).view());
}

TEST(MulCrossCheck, WnafAndStraussAgreeWithNaiveLadder1k) {
  for (int i = 0; i < 1000; ++i) {
    const Scalar a = sweep_scalar("xchk-a", i);
    const Scalar b = sweep_scalar("xchk-b", i);
    const Point p = Point::mul_gen(sweep_scalar("xchk-p", i));
    const Point ladder = Point::mul_ladder_vartime(p, a);
    ASSERT_EQ(p * a, ladder) << "wNAF mismatch at i=" << i;
    ASSERT_EQ(Point::mul_add_vartime(a, p, b), ladder + Point::mul_gen(b))
        << "Strauss–Shamir mismatch at i=" << i;
  }
}

TEST(MulCrossCheck, EdgeScalars) {
  const Point p = Point::mul_gen(sweep_scalar("edge-p", 0));
  EXPECT_TRUE((p * Scalar(0)).is_infinity());
  EXPECT_EQ(p * Scalar(1), p);
  EXPECT_EQ(p * Scalar(1).neg(), p.neg());
  // Order-adjacent scalars exercise the wNAF carry chain.
  const Scalar minus_two = Scalar(2).neg();
  EXPECT_EQ(p * minus_two, Point::mul_ladder_vartime(p, minus_two));
  EXPECT_EQ(Point::mul_add_vartime(Scalar(0), p, Scalar(0)),
            Point::mul_ladder_vartime(p, Scalar(0)));
}

TEST(MulCrossCheck, MulAddEqualsMatchesExplicitComputation) {
  for (int i = 0; i < 32; ++i) {
    const Scalar a = sweep_scalar("eq-a", i);
    const Scalar b = sweep_scalar("eq-b", i);
    const Point p = Point::mul_gen(sweep_scalar("eq-p", i));
    const Point expect = Point::mul_add_vartime(a, p, b);
    EXPECT_TRUE(Point::mul_add_equals_vartime(a, p, b, expect));
    EXPECT_FALSE(Point::mul_add_equals_vartime(a, p, b, expect + p));
  }
}

std::vector<crypto::SigBatchItem> make_batch(int n) {
  std::vector<crypto::SigBatchItem> items;
  for (int i = 0; i < n; ++i) {
    const auto kp = crypto::derive_keypair("batch" + std::to_string(i));
    const Hash256 msg = crypto::Sha256::hash(str_bytes("bmsg" + std::to_string(i)));
    items.push_back({kp.pk, msg, crypto::schnorr_sign(kp.sk, msg)});
  }
  return items;
}

TEST(SchnorrBatch, AcceptsValidBatch) {
  EXPECT_TRUE(crypto::schnorr_verify_batch({}));
  const auto one = make_batch(1);
  EXPECT_TRUE(crypto::schnorr_verify_batch(one));
  const auto items = make_batch(16);
  EXPECT_TRUE(crypto::schnorr_verify_batch(items));
}

TEST(SchnorrBatch, RejectsSingleFlippedBit) {
  auto items = make_batch(8);
  // A single flipped bit anywhere in any signature must sink the batch.
  for (const std::size_t victim : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    for (const std::size_t byte : {std::size_t{1}, std::size_t{40}, std::size_t{64}}) {
      auto tampered = items;
      tampered[victim].sig[byte] ^= 0x01;
      EXPECT_FALSE(crypto::schnorr_verify_batch(tampered))
          << "victim=" << victim << " byte=" << byte;
    }
  }
}

TEST(SchnorrBatch, RejectsWrongMessageAndSwappedKeys) {
  auto items = make_batch(4);
  auto wrong_msg = items;
  wrong_msg[2].msg = crypto::Sha256::hash(str_bytes("not the signed message"));
  EXPECT_FALSE(crypto::schnorr_verify_batch(wrong_msg));
  auto swapped = items;
  std::swap(swapped[0].pk, swapped[1].pk);
  EXPECT_FALSE(crypto::schnorr_verify_batch(swapped));
}

TEST(Schnorr, KeyPairSignVerifies) {
  const auto kp = crypto::derive_keypair("kp-fast-sign");
  const Hash256 msg = crypto::Sha256::hash(str_bytes("keypair nonce path"));
  // The keypair variant uses a different (synthetic) nonce than the sk
  // variant, so the bytes differ — but both must verify under the same key.
  const Bytes fast = crypto::schnorr_sign(kp, msg);
  const Bytes slow = crypto::schnorr_sign(kp.sk, msg);
  EXPECT_TRUE(crypto::schnorr_verify(kp.pk, msg, fast));
  EXPECT_TRUE(crypto::schnorr_verify(kp.pk, msg, slow));
  const Hash256 other = crypto::Sha256::hash(str_bytes("other message"));
  EXPECT_FALSE(crypto::schnorr_verify(kp.pk, other, fast));
}

TEST(Schnorr, PrecomputedVerifyMatchesPlain) {
  const auto kp = crypto::derive_keypair("precomp-verify");
  const crypto::PrecomputedPoint pre(kp.pk);
  for (int i = 0; i < 4; ++i) {
    const Hash256 msg = crypto::Sha256::hash(str_bytes("pv" + std::to_string(i)));
    const Bytes sig = crypto::schnorr_sign(kp, msg);
    EXPECT_TRUE(crypto::schnorr_verify(pre, msg, sig));
    EXPECT_EQ(crypto::schnorr_verify(pre, msg, sig),
              crypto::schnorr_verify(kp.pk, msg, sig));
    Bytes bad = sig;
    bad[10] ^= 0x04;
    EXPECT_FALSE(crypto::schnorr_verify(pre, msg, bad));
  }
}

TEST(SchnorrBatch, PrecomputedTablesGiveSameVerdict) {
  auto items = make_batch(5);
  // Attach tables to a subset of the keys — the batch path must serve mixed
  // precomputed/fresh entries (and the negated-key lookup inside).
  std::vector<std::unique_ptr<crypto::PrecomputedPoint>> tables;
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    tables.push_back(std::make_unique<crypto::PrecomputedPoint>(items[i].pk));
    items[i].pre = tables.back().get();
  }
  EXPECT_TRUE(crypto::schnorr_verify_batch(items));
  auto tampered = items;
  tampered[2].sig[17] ^= 0x20;
  EXPECT_FALSE(crypto::schnorr_verify_batch(tampered));
  const std::span<const crypto::SigBatchItem> one(items.data() + 2, 1);
  EXPECT_TRUE(crypto::schnorr_verify_batch(one));  // n==1 precomputed path
}

TEST(SchnorrBatch, SchemeInterfaceRoutesBatches) {
  const auto& schnorr = crypto::schnorr_scheme();
  ASSERT_TRUE(schnorr.supports_batch_verify());
  auto items = make_batch(5);
  EXPECT_TRUE(schnorr.verify_batch(items));
  items[1].sig[10] ^= 0x80;
  EXPECT_FALSE(schnorr.verify_batch(items));

  // ECDSA has no batch equation; the default per-item loop still gives
  // correct verdicts through the same interface.
  const auto& ecdsa = crypto::ecdsa_scheme();
  EXPECT_FALSE(ecdsa.supports_batch_verify());
  std::vector<crypto::SigBatchItem> eitems;
  for (int i = 0; i < 3; ++i) {
    const auto kp = crypto::derive_keypair("ebatch" + std::to_string(i));
    const Hash256 msg = crypto::Sha256::hash(str_bytes("emsg" + std::to_string(i)));
    eitems.push_back({kp.pk, msg, crypto::ecdsa_sign(kp.sk, msg)});
  }
  EXPECT_TRUE(ecdsa.verify_batch(eitems));
  eitems[2].sig[5] ^= 0x01;
  EXPECT_FALSE(ecdsa.verify_batch(eitems));
}

}  // namespace
}  // namespace daric
