// Regression tests for the PCN bugs fixed in PR 2:
//  - HTLC rollback/settlement removed the *last* HTLC on a channel instead
//    of the one belonging to the payment, corrupting any pair of in-flight
//    payments sharing an edge;
//  - `spendable` computed `balance - 1` without a guard, so a drained side
//    could be treated as liquid by routing;
//  - routing rescanned every channel per dequeued node instead of using a
//    per-node adjacency index.
#include <gtest/gtest.h>

#include "src/pcn/network.h"

namespace daric {
namespace {

using sim::PartyId;

constexpr Round kDelta = 2;

struct PcnFixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  pcn::PaymentNetwork net{env};

  PcnFixture() {
    for (const char* n : {"alice", "bob", "carol", "dave"}) net.add_node(n);
    net.open_channel("alice", "bob", 500'000, 500'000);
    net.open_channel("bob", "carol", 500'000, 500'000);
    net.open_channel("carol", "dave", 500'000, 500'000);
  }

  std::size_t htlc_count(std::size_t channel_index) {
    return net.channel(channel_index).party(PartyId::kA).state().htlcs.size();
  }
};

// Two payments in flight over the same edges; aborting the FIRST one must
// leave the second one's HTLCs in place. Pre-fix, rollback popped the last
// HTLC pushed (the second payment's), so settling the survivor moved the
// wrong amounts.
TEST(PcnRegression, AbortFirstOfTwoConcurrentPaymentsOverSharedEdge) {
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  const Amount c0 = f.net.balance("carol");

  const auto p1 = f.net.begin_payment("alice", "carol", 120'000);
  const auto p2 = f.net.begin_payment("alice", "carol", 50'000);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(f.htlc_count(0), 2u);
  EXPECT_EQ(f.htlc_count(1), 2u);

  ASSERT_TRUE(f.net.abort_payment(*p1));
  EXPECT_EQ(f.htlc_count(0), 1u);
  EXPECT_EQ(f.htlc_count(1), 1u);

  ASSERT_TRUE(f.net.settle_payment(*p2));
  EXPECT_EQ(f.htlc_count(0), 0u);
  EXPECT_EQ(f.htlc_count(1), 0u);
  EXPECT_EQ(f.net.balance("alice"), a0 - 50'000);
  EXPECT_EQ(f.net.balance("carol"), c0 + 50'000);
  EXPECT_EQ(f.net.balance("bob"), 1'000'000);  // intermediary nets to zero
  EXPECT_EQ(f.net.payments_completed(), 1);
}

// Settling out of lock order must also resolve each payment's own HTLCs.
TEST(PcnRegression, SettleConcurrentPaymentsOutOfOrder) {
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  const Amount d0 = f.net.balance("dave");

  const auto p1 = f.net.begin_payment("alice", "dave", 100'000);
  const auto p2 = f.net.begin_payment("alice", "dave", 70'000);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());

  ASSERT_TRUE(f.net.settle_payment(*p2));
  ASSERT_TRUE(f.net.settle_payment(*p1));
  EXPECT_EQ(f.net.balance("alice"), a0 - 170'000);
  EXPECT_EQ(f.net.balance("dave"), d0 + 170'000);
  EXPECT_EQ(f.net.balance("bob"), 1'000'000);
  EXPECT_EQ(f.net.balance("carol"), 1'000'000);
  EXPECT_EQ(f.net.payments_completed(), 2);
}

// Aborting a payment restores the exact pre-payment balances.
TEST(PcnRegression, AbortRestoresBalances) {
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  const Amount b0 = f.net.balance("bob");
  const auto id = f.net.begin_payment("alice", "dave", 200'000);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(f.net.abort_payment(*id));
  EXPECT_EQ(f.net.balance("alice"), a0);
  EXPECT_EQ(f.net.balance("bob"), b0);
  EXPECT_EQ(f.net.payments_completed(), 0);
  // Settle/abort on a resolved id is refused.
  EXPECT_FALSE(f.net.settle_payment(*id));
  EXPECT_FALSE(f.net.abort_payment(*id));
}

// A drained edge (balance at the 1-satoshi reserve) offers zero liquidity:
// routing must not cross it, in either direction.
TEST(PcnRegression, RoutingRefusesDrainedEdge) {
  PcnFixture f;
  // Drain alice→bob as far as the reserve allows.
  ASSERT_TRUE(f.net.pay("alice", "bob", 499'999));
  EXPECT_FALSE(f.net.find_route("alice", "bob", 1).has_value());
  EXPECT_FALSE(f.net.find_route("alice", "dave", 1).has_value());
  // The reverse direction gained the liquidity.
  ASSERT_TRUE(f.net.find_route("bob", "alice", 500'000).has_value());
  ASSERT_TRUE(f.net.pay("bob", "alice", 100'000));
  EXPECT_TRUE(f.net.find_route("alice", "dave", 50'000).has_value());
}

// Liquidity locked in pending HTLCs is unavailable to later route queries
// until the payment resolves.
TEST(PcnRegression, PendingHtlcLocksReduceRoutableLiquidity) {
  PcnFixture f;
  const auto id = f.net.begin_payment("alice", "dave", 400'000);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(f.net.find_route("alice", "dave", 200'000).has_value());
  ASSERT_TRUE(f.net.abort_payment(*id));
  EXPECT_TRUE(f.net.find_route("alice", "dave", 200'000).has_value());
}

// The adjacency index must stay consistent as channels are opened, including
// parallel channels between the same pair of nodes.
TEST(PcnRegression, AdjacencyIndexCoversNewAndParallelChannels) {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  pcn::PaymentNetwork net{env};
  for (const char* n : {"a", "b", "c", "d", "e"}) net.add_node(n);
  net.open_channel("a", "b", 10'000, 10'000);
  EXPECT_FALSE(net.find_route("a", "c", 1'000).has_value());
  net.open_channel("b", "c", 10'000, 10'000);
  EXPECT_TRUE(net.find_route("a", "c", 1'000).has_value());
  // A parallel a-b channel with more liquidity unlocks bigger payments.
  EXPECT_FALSE(net.find_route("a", "b", 50'000).has_value());
  net.open_channel("a", "b", 80'000, 1'000);
  const auto big = net.find_route("a", "b", 50'000);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->size(), 1u);
  EXPECT_EQ((*big)[0].channel_index, 2u);
  // Nodes with no channels are simply unreachable, not an error.
  EXPECT_FALSE(net.find_route("a", "e", 1).has_value());
  EXPECT_FALSE(net.find_route("e", "a", 1).has_value());
  // Payments still work end to end across the indexed graph.
  net.open_channel("c", "d", 10'000, 10'000);
  EXPECT_TRUE(net.pay("a", "d", 2'000));
}

}  // namespace
}  // namespace daric
