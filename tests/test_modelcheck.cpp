// Tier-1 suite for the bounded model checker (src/verify): the default
// configuration must be provably safe over a large state space, deliberately
// weakened configurations must produce Theorem-1 counterexamples, and
// sampled model traces must replay faithfully on the concrete DaricChannel
// engine over the real ledger.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/verify/explorer.h"
#include "src/verify/invariants.h"
#include "src/verify/replay.h"
#include "src/verify/trace.h"

namespace {

using daric::verify::Action;
using daric::verify::ActionKind;
using daric::verify::Explorer;
using daric::verify::ExploreResult;
using daric::verify::InvariantId;
using daric::verify::Options;
using daric::verify::Packed;
using daric::verify::PackedHash;
using daric::verify::Resolution;
using daric::verify::State;

// ---------------------------------------------------------------------------
// Exhaustive exploration of the default (protocol-faithful) configuration
// ---------------------------------------------------------------------------

TEST(ModelCheck, DefaultConfigurationIsSafe) {
  const Options opts;  // Δ=1, T=3, 3 updates, towers on, crashes on
  const ExploreResult res = Explorer(opts).run();

  // Acceptance bar: a six-figure distinct-state space, fully explored.
  EXPECT_GE(res.distinct_states, 100'000u);
  EXPECT_FALSE(res.state_cap_hit);
  EXPECT_GT(res.transitions, res.distinct_states);

  // The space must actually exercise every resolution class.
  EXPECT_GT(res.terminal_states, 0u);
  EXPECT_GT(res.resolved_states, 0u);
  EXPECT_GT(res.punished_states, 0u);
  EXPECT_LT(res.punished_states, res.resolved_states);

  for (const auto& rep : res.violations)
    ADD_FAILURE() << daric::verify::violation_to_string(rep, opts);
  EXPECT_TRUE(res.violations.empty());
}

TEST(ModelCheck, LiveVictimNeedsNoWatchtower) {
  // With crashes disabled every victim is awake inside its reaction window,
  // so balance security must hold even with no watchtowers at all.
  Options opts;
  opts.tower_a = opts.tower_b = false;
  opts.allow_crash = false;
  const ExploreResult res = Explorer(opts).run();
  EXPECT_GT(res.distinct_states, 0u);
  EXPECT_GT(res.punished_states, 0u);
  EXPECT_TRUE(res.violations.empty());
}

// ---------------------------------------------------------------------------
// Deliberately broken variants must produce counterexamples
// ---------------------------------------------------------------------------

TEST(ModelCheck, WatchtowerlessCrashTripsBalanceSecurity) {
  Options opts;
  opts.tower_a = opts.tower_b = false;  // crashes stay enabled
  const ExploreResult res = Explorer(opts).run();
  ASSERT_FALSE(res.violations.empty());

  for (const auto& rep : res.violations) {
    EXPECT_EQ(rep.violation.id, InvariantId::kBalanceSecurity)
        << rep.violation.detail;
    // Counterexample anatomy: a revoked commit settled through the split
    // path while the victim was crashed with no tower armed.
    EXPECT_EQ(rep.state.resolution, Resolution::kSplit);
    EXPECT_FALSE(rep.state.punish_expected);
    const auto& victim = rep.state.party[1 - rep.state.confirmed_owner];
    EXPECT_LT(rep.state.confirmed_state, victim.sn);

    // The reported trace must reproduce the reported state in the model.
    ASSERT_FALSE(rep.trace.empty());
    EXPECT_EQ(daric::verify::model_final(opts, rep.trace), rep.state)
        << daric::verify::trace_to_string(rep.trace);
  }
}

TEST(ModelCheck, SingleTowerProtectsOnlyItsClient) {
  // Disarm only A's tower: every counterexample must victimise A.
  Options opts;
  opts.tower_a = false;
  const ExploreResult res = Explorer(opts).run();
  ASSERT_FALSE(res.violations.empty());
  for (const auto& rep : res.violations) {
    EXPECT_EQ(rep.violation.id, InvariantId::kBalanceSecurity);
    EXPECT_NE(rep.violation.detail.find("party A"), std::string::npos)
        << rep.violation.detail;
  }
}

// ---------------------------------------------------------------------------
// Packing / dedup sanity
// ---------------------------------------------------------------------------

TEST(ModelCheck, PackIsInjectiveOnSuccessors) {
  const Options opts;
  const State s0 = daric::verify::initial_state(opts);
  EXPECT_EQ(daric::verify::pack(s0), daric::verify::pack(s0));

  std::vector<Action> actions;
  daric::verify::enabled_actions(s0, opts, actions);
  ASSERT_FALSE(actions.empty());

  std::vector<State> states{s0};
  for (const Action& a : actions)
    states.push_back(daric::verify::apply(s0, a, opts));

  const PackedHash hash;
  for (const State& x : states) {
    for (const State& y : states) {
      const Packed px = daric::verify::pack(x);
      const Packed py = daric::verify::pack(y);
      EXPECT_EQ(x == y, px == py);  // key equality ⇔ state equality
      if (px == py) {
        EXPECT_EQ(hash(px), hash(py));
      }
    }
  }
}

TEST(ModelCheck, ApplyIsDeterministic) {
  const Options opts;
  const State s0 = daric::verify::initial_state(opts);
  std::vector<Action> actions;
  daric::verify::enabled_actions(s0, opts, actions);
  ASSERT_FALSE(actions.empty());
  for (const Action& a : actions)
    EXPECT_EQ(daric::verify::apply(s0, a, opts), daric::verify::apply(s0, a, opts));
}

// ---------------------------------------------------------------------------
// Conformance replay against the concrete engine
// ---------------------------------------------------------------------------

TEST(ModelCheck, SampledTracesReplayOnConcreteEngine) {
  const Options opts;
  Explorer explorer(opts);
  explorer.collect_sample_traces(12);
  const ExploreResult res = explorer.run();
  ASSERT_TRUE(res.violations.empty());
  ASSERT_FALSE(res.sample_traces.empty());

  int replayed = 0;
  int idx = 0;
  for (const auto& trace : res.sample_traces) {
    const State fin = daric::verify::model_final(opts, trace);
    ASSERT_TRUE(fin.resolved()) << daric::verify::trace_to_string(trace);
    const auto model_pay = daric::verify::payouts_of(fin, opts);
    ASSERT_TRUE(model_pay.resolved);

    const auto concrete = daric::verify::replay_trace(
        opts, trace, "mc-replay-" + std::to_string(idx++));
    if (!concrete) continue;  // trace not driveable through the public API
    ++replayed;

    EXPECT_EQ(concrete->outcome, daric::verify::expected_outcome(fin.resolution))
        << daric::verify::trace_to_string(trace);
    EXPECT_EQ(concrete->payout_a, model_pay.a)
        << daric::verify::trace_to_string(trace);
    EXPECT_EQ(concrete->payout_b, model_pay.b)
        << daric::verify::trace_to_string(trace);
  }
  // The sampler filters for replayable traces; most must actually replay.
  EXPECT_GE(replayed, 3) << "only " << replayed << " of "
                         << res.sample_traces.size() << " traces replayed";
}

}  // namespace
