// Static analyzer tests: every engine's template set must prove clean, and
// each lint must fire on a crafted broken fixture.
#include <gtest/gtest.h>

#include "src/analyze/auth.h"
#include "src/analyze/engines.h"
#include "src/analyze/graph.h"
#include "src/analyze/interp.h"
#include "src/analyze/reach.h"
#include "src/analyze/lints.h"
#include "src/analyze/report.h"
#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/daric/scripts.h"
#include "src/script/interpreter.h"
#include "src/script/standard.h"

namespace daric {
namespace {

using analyze::Report;
using analyze::TemplateInput;
using analyze::TxTemplate;
using analyze::WitnessElem;
using script::Op;
using script::Script;
using script::SighashFlag;

const auto kA = crypto::derive_keypair("analyze-test/A");
const auto kB = crypto::derive_keypair("analyze-test/B");

// --- Positive: the real protocol templates are sound ----------------------

TEST(AnalyzeEngines, AllFourEnginesLintClean) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string& engine : analyze::engine_names()) {
    const std::vector<TxTemplate> templates =
        analyze::engine_templates(engine, params, model);
    ASSERT_FALSE(templates.empty()) << engine;
    Report rep;
    analyze::lint_templates(templates, rep);
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_EQ(rep.warning_count(), 0u) << engine << ":\n" << rep.render();
  }
}

TEST(AnalyzeEngines, FeeableRevocationVariantLintsClean) {
  const verify::Options model;
  channel::ChannelParams params = analyze::params_for_model(model);
  params.feeable_revocations = true;
  Report rep;
  analyze::lint_templates(daricch::enumerate_templates(params, model), rep);
  EXPECT_EQ(rep.error_count(), 0u) << rep.render();
}

TEST(AnalyzeEngines, MoreStatesStayClean) {
  verify::Options model;
  model.max_updates = 6;
  const channel::ChannelParams params = analyze::params_for_model(model);
  Report rep;
  analyze::lint_templates(analyze::all_engine_templates(params, model), rep);
  EXPECT_EQ(rep.error_count(), 0u) << rep.render();
}

// --- Fixture helpers ------------------------------------------------------

TxTemplate p2wsh_fixture(const Script& ws, std::vector<WitnessElem> witness,
                         Amount in_cash = 100, Amount out_cash = 100) {
  TxTemplate t;
  t.engine = "fixture";
  t.name = "case";
  t.body.inputs = {{analyze::template_outpoint("fixture")}};
  t.body.nlocktime = 0;
  t.body.outputs = {{out_cash, tx::Condition::p2wpkh(kA.pk.compressed())}};
  TemplateInput in;
  in.spent = {in_cash, tx::Condition::p2wsh(ws)};
  in.witness_script = ws;
  in.witness = std::move(witness);
  t.inputs = {std::move(in)};
  return t;
}

Report lint_one(const TxTemplate& t) {
  Report rep;
  analyze::lint_templates({t}, rep);
  return rep;
}

Report lint_script_only(const Script& s) {
  Report rep;
  analyze::lint_script(s, "fixture", rep);
  return rep;
}

// --- Negative: each lint fires on its broken fixture ----------------------

TEST(AnalyzeLints, StackUnderflowDA001) {
  // 2-of-2 multisig needs [dummy, sigA, sigB]; the template only carries two.
  const Script ws = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const Report rep = lint_one(p2wsh_fixture(
      ws, {WitnessElem::empty(), WitnessElem::sig(SighashFlag::kAll)}));
  EXPECT_TRUE(rep.has("DA001")) << rep.render();
}

TEST(AnalyzeLints, UnbalancedConditionalDA002) {
  Script s;
  s.push(kA.pk.compressed()).op(Op::OP_CHECKSIG).op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(s).has("DA002"));

  Script open_if;
  open_if.op(Op::OP_IF).push(kA.pk.compressed()).op(Op::OP_CHECKSIG);
  EXPECT_TRUE(lint_script_only(open_if).has("DA002"));
}

TEST(AnalyzeLints, DeadBranchDA003) {
  // Constant condition: the false branch of OP_1 IF can never execute.
  Script constant_selector;
  constant_selector.op(Op::OP_1)
      .op(Op::OP_IF)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ELSE)
      .push(kB.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(constant_selector).has("DA003"));

  // Reachable but never accepting: the ELSE arm always aborts.
  Script return_else;
  return_else.op(Op::OP_IF)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ELSE)
      .op(Op::OP_RETURN)
      .op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(return_else).has("DA003"));
}

TEST(AnalyzeLints, UnspendableDA004) {
  Script s;
  s.op(Op::OP_RETURN);
  EXPECT_TRUE(lint_script_only(s).has("DA004"));

  // Constant EQUALVERIFY that can never hold.
  Script mismatch;
  mismatch.op(Op::OP_1).op(Op::OP_0).op(Op::OP_EQUALVERIFY).op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(mismatch).has("DA004"));
}

TEST(AnalyzeLints, AnyoneCanSpendDA005) {
  Script s;
  s.op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(s).has("DA005"));

  // A protocol script with a real signature gate must not trip the lint.
  const Report rep = lint_script_only(script::single_key(kA.pk.compressed()));
  EXPECT_FALSE(rep.has("DA005")) << rep.render();
}

TEST(AnalyzeLints, UncleanStackDA006) {
  Script s;
  s.push(kA.pk.compressed()).op(Op::OP_CHECKSIG).op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(s).has("DA006"));
}

TEST(AnalyzeLints, NonMinimalPushDA007) {
  Script s;
  s.push(Bytes{5}).op(Op::OP_DROP).push(kA.pk.compressed()).op(Op::OP_CHECKSIG);
  const Report rep = lint_script_only(s);
  EXPECT_TRUE(rep.has("DA007")) << rep.render();
}

TEST(AnalyzeLints, ResourceLimitDA008) {
  // Static: wire size past script::kMaxScriptSize.
  Script big;
  while (big.wire_size() <= script::kMaxScriptSize) big.push(Bytes(255, 0xab));
  EXPECT_TRUE(lint_script_only(big).has("DA008"));

  // Static: abstract stack depth past script::kMaxStackDepth.
  Script deep;
  for (std::size_t i = 0; i <= script::kMaxStackDepth; ++i) deep.op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(deep).has("DA008"));
}

TEST(AnalyzeLints, CltvMismatchDA009) {
  Script s;
  s.num4(50)
      .op(Op::OP_CHECKLOCKTIMEVERIFY)
      .op(Op::OP_DROP)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG);
  TxTemplate t = p2wsh_fixture(s, {WitnessElem::sig(SighashFlag::kAll)});
  t.body.nlocktime = 10;  // < 50: the template can never satisfy its script
  EXPECT_TRUE(lint_one(t).has("DA009"));
  t.body.nlocktime = 50;
  EXPECT_FALSE(lint_one(t).has("DA009"));
}

TEST(AnalyzeLints, CsvMismatchDA010) {
  Script s;
  s.num4(5)
      .op(Op::OP_CHECKSEQUENCEVERIFY)
      .op(Op::OP_DROP)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG);
  TxTemplate t = p2wsh_fixture(s, {WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].spend_age = 2;  // the protocol posts before the CSV matures
  EXPECT_TRUE(lint_one(t).has("DA010"));
  t.inputs[0].spend_age = 5;
  EXPECT_FALSE(lint_one(t).has("DA010"));
}

TEST(AnalyzeLints, SingleWithoutOutputDA011) {
  // Two inputs, one output: a SINGLE signature on input 1 has no digest.
  TxTemplate t;
  t.engine = "fixture";
  t.name = "single";
  t.body.inputs = {{analyze::template_outpoint("in0")},
                   {analyze::template_outpoint("in1")}};
  t.body.nlocktime = 0;
  t.body.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  auto p2wpkh_in = [&](const crypto::KeyPair& k, SighashFlag flag) {
    TemplateInput in;
    in.spent = {50, tx::Condition::p2wpkh(k.pk.compressed())};
    in.witness = {WitnessElem::sig(flag), WitnessElem::constant(k.pk.compressed())};
    return in;
  };
  t.inputs = {p2wpkh_in(kA, SighashFlag::kAll), p2wpkh_in(kB, SighashFlag::kSingle)};
  EXPECT_TRUE(lint_one(t).has("DA011"));
  t.inputs[1].witness[0] = WitnessElem::sig(SighashFlag::kAll);
  EXPECT_FALSE(lint_one(t).has("DA011"));
}

TEST(AnalyzeLints, RebindWithoutAnyprevoutDA012) {
  const Script ws = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  TxTemplate t = p2wsh_fixture(ws, {WitnessElem::empty(),
                                    WitnessElem::sig(SighashFlag::kAll),
                                    WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].rebindable = true;  // floating, but the signatures pin the outpoint
  EXPECT_TRUE(lint_one(t).has("DA012"));
  t.inputs[0].witness[1] = WitnessElem::sig(SighashFlag::kAllAnyPrevOut);
  t.inputs[0].witness[2] = WitnessElem::sig(SighashFlag::kAllAnyPrevOut);
  EXPECT_FALSE(lint_one(t).has("DA012"));
}

TEST(AnalyzeLints, WitnessProgramMismatchDA013) {
  const Script real = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const Script wrong = script::single_key(kA.pk.compressed());
  TxTemplate t = p2wsh_fixture(real, {WitnessElem::empty(),
                                      WitnessElem::sig(SighashFlag::kAll),
                                      WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].witness_script = wrong;  // hash no longer matches the spent program
  EXPECT_TRUE(lint_one(t).has("DA013"));
}

TEST(AnalyzeLints, ValueOverflowDA015) {
  const Script ws = script::single_key(kA.pk.compressed());
  const TxTemplate t = p2wsh_fixture(ws, {WitnessElem::sig(SighashFlag::kAll)},
                                     /*in_cash=*/100, /*out_cash=*/200);
  EXPECT_TRUE(lint_one(t).has("DA015"));
}

TEST(AnalyzeLints, TemplateShapeDA017) {
  TxTemplate t = p2wsh_fixture(script::single_key(kA.pk.compressed()),
                               {WitnessElem::sig(SighashFlag::kAll)});
  t.body.inputs.push_back({analyze::template_outpoint("extra")});  // no input spec
  EXPECT_TRUE(lint_one(t).has("DA017"));
}

TEST(AnalyzeLints, SuppressionDropsFindings) {
  Script s;
  s.op(Op::OP_1);
  Report rep;
  rep.suppress("DA005");
  analyze::lint_script(s, "fixture", rep);
  EXPECT_FALSE(rep.has("DA005"));
  EXPECT_EQ(rep.error_count(), 0u);
}

// --- Interpreter limits: static constants are enforced dynamically too ----

class PermissiveChecker : public script::SigChecker {
 public:
  bool check_sig(BytesView, BytesView) const override { return true; }
  bool check_locktime(std::uint32_t) const override { return true; }
  bool check_sequence(std::uint32_t) const override { return true; }
};

TEST(InterpreterLimits, StackOverflowCaughtAtRuntime) {
  Script deep;
  for (std::size_t i = 0; i <= script::kMaxStackDepth; ++i) deep.op(Op::OP_1);
  std::vector<Bytes> stack;
  const PermissiveChecker checker;
  EXPECT_EQ(script::eval_script(deep, stack, checker), script::ScriptError::kStackOverflow);
}

TEST(InterpreterLimits, OversizedScriptRejectedAtRuntime) {
  Script big;
  while (big.wire_size() <= script::kMaxScriptSize) big.push(Bytes(255, 0xab));
  std::vector<Bytes> stack;
  const PermissiveChecker checker;
  EXPECT_EQ(script::eval_script(big, stack, checker), script::ScriptError::kScriptTooLarge);
}

TEST(InterpreterLimits, RealProtocolScriptsFitWithinLimits) {
  // The analyzer proves these statically; spot-check the shared constants.
  const Script commit = daricch::commit_script(kA.pk.compressed(), kB.pk.compressed(),
                                               kA.pk.compressed(), kB.pk.compressed(), 42, 10);
  EXPECT_LE(commit.wire_size(), script::kMaxScriptSize);
  const analyze::ScriptAnalysis an = analyze::analyze_script(commit);
  EXPECT_LE(an.max_depth, script::kMaxStackDepth);
}

// --- Spend graph: reachability, races, Theorem-1 bounds (DA018..DA022) ----

using analyze::ReachParams;
using analyze::ReachReport;
using analyze::SpendGraph;
using analyze::TemplateTag;

ReachReport graph_pass(std::vector<TxTemplate> templates, Report& rep,
                       ReachParams params = {}) {
  const SpendGraph g = analyze::build_spend_graph(std::move(templates));
  return analyze::analyze_reachability(g, params, rep);
}

/// Asserts that exactly `id` fired among the graph lints.
void expect_only(const Report& rep, const std::string& id) {
  for (const char* lint : {"DA018", "DA019", "DA020", "DA021", "DA022"}) {
    if (id == lint)
      EXPECT_TRUE(rep.has(lint)) << rep.render();
    else
      EXPECT_FALSE(rep.has(lint)) << rep.render();
  }
}

Script csv_key_script(std::uint32_t csv, const crypto::KeyPair& k) {
  Script s;
  s.num4(csv)
      .op(Op::OP_CHECKSEQUENCEVERIFY)
      .op(Op::OP_DROP)
      .push(k.pk.compressed())
      .op(Op::OP_CHECKSIG);
  return s;
}

Script cltv_key_script(std::uint32_t cltv, const crypto::KeyPair& k) {
  Script s;
  s.num4(cltv)
      .op(Op::OP_CHECKLOCKTIMEVERIFY)
      .op(Op::OP_DROP)
      .push(k.pk.compressed())
      .op(Op::OP_CHECKSIG);
  return s;
}

/// Template spending one prior output through a single-sig P2WSH script.
TxTemplate spender(const std::string& name, tx::OutPoint prev,
                   const tx::Output& spent, const Script& ws, Round age,
                   std::vector<tx::Output> outs,
                   TemplateTag tag = TemplateTag::kNeutral, int state = -1) {
  TxTemplate t;
  t.engine = "gfx";
  t.name = name;
  t.body.inputs = {{prev}};
  t.body.nlocktime = 0;
  t.body.outputs = std::move(outs);
  TemplateInput in;
  in.spent = spent;
  in.witness_script = ws;
  in.witness = {WitnessElem::sig(SighashFlag::kAll)};
  in.spend_age = age;
  t.inputs = {std::move(in)};
  t.tag = tag;
  t.state = state;
  return t;
}

/// A stale commit (state 0) + a latest commit (state 1) with terminal
/// outputs, both drawn from the same external funding root. The stale
/// commit's single output carries `out_ws`.
std::vector<TxTemplate> two_commits(const Script& out_ws) {
  const Script fund_ws = script::single_key(kA.pk.compressed());
  const tx::OutPoint fund = analyze::template_outpoint("gfx/fund");
  const tx::Output fund_out{100, tx::Condition::p2wsh(fund_ws)};
  std::vector<TxTemplate> ts;
  ts.push_back(spender("commit[0]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wsh(out_ws)}}, TemplateTag::kCommit, 0));
  ts.push_back(spender("commit[1]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}},
                       TemplateTag::kCommit, 1));
  return ts;
}

tx::OutPoint out0(const TxTemplate& t) { return {t.body.txid(), 0}; }

TEST(AnalyzeGraph, AllSixEnginesGraphClean) {
  const verify::Options model;  // Δ=1, T=3 → bound limit 2
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string& engine : analyze::engine_names()) {
    Report rep;
    ReachReport rr =
        graph_pass(analyze::engine_templates(engine, params, model), rep,
                   {model.delta, model.t_punish});
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_TRUE(rr.punish_reachable) << engine;
    EXPECT_GT(rr.stale_commits, 0u) << engine;
    EXPECT_EQ(rr.races_won(), rr.races.size()) << engine;
    EXPECT_GE(rr.theorem1_bound, 0) << engine;
    EXPECT_LE(rr.theorem1_bound, rr.bound_limit) << engine;
  }
}

TEST(AnalyzeGraph, DaricBoundMatchesTheorem1) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  Report rep;
  const ReachReport rr =
      graph_pass(analyze::engine_templates("daric", params, model), rep,
                 {model.delta, model.t_punish});
  // Revocation posts immediately (age 0): bound 2Δ = 2, limit T − Δ = 2.
  EXPECT_EQ(rr.theorem1_bound, 2);
  EXPECT_EQ(rr.bound_limit, 2);
}

TEST(AnalyzeGraph, CerberusAndFppwEnumerateNonEmpty) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string engine : {"cerberus", "fppw"}) {
    const auto templates = analyze::engine_templates(engine, params, model);
    ASSERT_FALSE(templates.empty()) << engine;
    Report rep;
    analyze::lint_templates(templates, rep);
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_EQ(rep.warning_count(), 0u) << engine << ":\n" << rep.render();
  }
}

TEST(AnalyzeGraph, LatePunishTripsDA018) {
  // The only punish response waits 10 rounds: bound 1+10+1 = 12 > T−Δ = 2.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 10,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep);
  expect_only(rep, "DA018");
  EXPECT_EQ(rr.theorem1_bound, 12);
}

TEST(AnalyzeGraph, MissingPunishTripsDA018) {
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  // No punish template at all; the stale commit's output must still have a
  // spender or DA019 would (rightly) fire too — give it a neutral sweep.
  ts.push_back(spender("sweep", out0(ts[0]), ts[0].body.outputs[0], ws, 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}}));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep);
  expect_only(rep, "DA018");
  EXPECT_FALSE(rr.punish_reachable);
}

TEST(AnalyzeGraph, StrandedOutputTripsDA019) {
  // A reachable template leaves a P2WSH output nothing ever spends.
  const Script fund_ws = script::single_key(kA.pk.compressed());
  const tx::OutPoint fund = analyze::template_outpoint("gfx/fund");
  std::vector<TxTemplate> ts;
  ts.push_back(spender("strand", fund, {100, tx::Condition::p2wsh(fund_ws)},
                       fund_ws, 0,
                       {{100, tx::Condition::p2wsh(script::single_key(
                                  kB.pk.compressed()))}}));
  Report rep;
  graph_pass(std::move(ts), rep);
  expect_only(rep, "DA019");
}

TEST(AnalyzeGraph, DeadPunishTripsDA020) {
  // Two punish responses: a live one (keeps DA018 quiet) and one whose
  // script demands CLTV 50 that its nLockTime 0 body can never satisfy.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish-live", out0(ts[0]), ts[0].body.outputs[0], ws, 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  ts.push_back(spender("punish-dead", out0(ts[0]), ts[0].body.outputs[0],
                       cltv_key_script(50, kA), 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  Report rep;
  graph_pass(std::move(ts), rep);
  expect_only(rep, "DA020");
}

TEST(AnalyzeGraph, LostRaceTripsDA021) {
  // Punish waits 2 rounds but a consensus-only rival is includable after a
  // 1-round CSV: honest confirms at 1+2+1 = 4, rival includable from 1+1 = 2.
  // T = 10 keeps the DA018 bound (4 ≤ 9) quiet so only the race fires.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 2,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  ts.push_back(spender("rival-sweep", out0(ts[0]), ts[0].body.outputs[0],
                       csv_key_script(1, kB), 1,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}}));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep, {1, 10});
  expect_only(rep, "DA021");
  ASSERT_EQ(rr.races.size(), 1u);
  EXPECT_FALSE(rr.races[0].honest_wins);
  EXPECT_EQ(rr.races[0].honest_confirm, 4);
  EXPECT_EQ(rr.races[0].rival_include, 2);
}

// --- Authorization: who can spend every path (DA023..DA028) ---------------

using analyze::AuthParams;
using analyze::AuthReport;
using analyze::KnowledgeBase;
using analyze::Principal;
using analyze::PrincipalSet;

const PrincipalSet kSetP{Principal::kPartyP};
const PrincipalSet kSetQ{Principal::kPartyQ};
const PrincipalSet kSetPQ{Principal::kPartyP, Principal::kPartyQ};

AuthReport auth_pass(std::vector<TxTemplate> templates, const KnowledgeBase& kb,
                     Report& rep, AuthParams params = {}) {
  const SpendGraph g = analyze::build_spend_graph(std::move(templates));
  return analyze::analyze_authorization(g, kb, params, rep);
}

/// Asserts that exactly `id` fired among the authorization lints.
void expect_only_auth(const Report& rep, const std::string& id) {
  for (const char* lint : {"DA023", "DA024", "DA025", "DA026", "DA027", "DA028"}) {
    if (id == lint)
      EXPECT_TRUE(rep.has(lint)) << rep.render();
    else
      EXPECT_FALSE(rep.has(lint)) << rep.render();
  }
}

TEST(AnalyzeAuth, AllSixEnginesAuthClean) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string& engine : analyze::engine_names()) {
    KnowledgeBase kb;
    std::vector<TxTemplate> templates =
        analyze::engine_templates(engine, params, model, &kb);
    ASSERT_FALSE(kb.keys().empty()) << engine;
    const SpendGraph g = analyze::build_spend_graph(std::move(templates));
    Report rep;
    const AuthReport ar = analyze::analyze_authorization(
        g, kb, {model.delta, model.t_punish, -1}, rep);
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_EQ(ar.edges.size(), g.edges.size()) << engine;
    // Every satisfiable edge must bind at least one principal — no edge in
    // any engine is anyone-can-spend or orphaned from all key knowledge.
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      if (!g.edges[i].satisfiable) continue;
      EXPECT_FALSE(ar.edges[i].authorized.empty())
          << engine << " edge " << i;
      EXPECT_FALSE(ar.edges[i].authorized.has(Principal::kAnyone))
          << engine << " edge " << i;
    }
    // The races the reachability pass resolves survive the authorization
    // filter: every rival that can actually be signed still loses.
    const analyze::ReachReport rr =
        analyze::analyze_reachability(g, {model.delta, model.t_punish}, rep, &ar);
    EXPECT_EQ(rr.races_won(), rr.races.size()) << engine << ":\n" << rep.render();
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
  }
}

TEST(AnalyzeAuth, DaricRevocationAuthorizedSet) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  KnowledgeBase kb;
  const SpendGraph g = analyze::build_spend_graph(
      analyze::engine_templates("daric", params, model, &kb));
  Report rep;
  const AuthReport ar = analyze::analyze_authorization(
      g, kb, {model.delta, model.t_punish, -1}, rep);
  ASSERT_EQ(rep.error_count(), 0u) << rep.render();

  const PrincipalSet kRevokers{Principal::kPartyP, Principal::kPartyQ,
                               Principal::kTower};
  std::size_t revokes = 0, splits = 0;
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    if (!g.edges[i].satisfiable) continue;
    const std::string& name = g.tmpl(g.edges[i].spender).name;
    if (name.rfind("revoke[", 0) == 0) {
      ++revokes;
      // Either party or the watchtower can post the floating revocation of
      // a revoked state — the exact set the paper's penalization needs.
      EXPECT_EQ(ar.edges[i].authorized, kRevokers) << name;
    } else if (name.rfind("split[", 0) == 0) {
      ++splits;
      EXPECT_EQ(ar.edges[i].authorized, kSetPQ) << name;
    } else if (name == "htlc-claim") {
      EXPECT_EQ(ar.edges[i].authorized, kSetQ) << name;
    } else if (name == "htlc-timeout") {
      EXPECT_EQ(ar.edges[i].authorized, kSetP) << name;
    }
  }
  EXPECT_GT(revokes, 0u);
  EXPECT_GT(splits, 0u);
}

TEST(AnalyzeAuth, LeakedLatestPathTripsDA023) {
  // The latest commit's P2WSH output has an accepting path gated by a key
  // the counterparty holds, and no protocol edge takes that path.
  const auto leak = crypto::derive_keypair("analyze-test/leak");
  const Script fund_ws = script::single_key(kA.pk.compressed());
  const Script leak_ws = script::single_key(leak.pk.compressed());
  const tx::OutPoint fund = analyze::template_outpoint("gfx/fund");
  const tx::Output fund_out{100, tx::Condition::p2wsh(fund_ws)};
  std::vector<TxTemplate> ts;
  ts.push_back(spender("commit[0]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}},
                       TemplateTag::kCommit, 0));
  ts.push_back(spender("commit[1]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wsh(leak_ws)}},
                       TemplateTag::kCommit, 1));
  // The only spender carries no signature, so its edge cannot satisfy the
  // script: the path stays uncovered while the script itself is known.
  TxTemplate sweep = spender("sweep", out0(ts[1]), ts[1].body.outputs[0],
                             leak_ws, 0,
                             {{100, tx::Condition::p2wpkh(kA.pk.compressed())}});
  sweep.inputs[0].witness = {WitnessElem::empty()};
  ts.push_back(std::move(sweep));

  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "fund", kSetP);
  kb.add_key(leak.pk.compressed(), "leaked", kSetQ);
  Report rep;
  const AuthReport ar = auth_pass(std::move(ts), kb, rep);
  expect_only_auth(rep, "DA023");
  ASSERT_FALSE(ar.latest_paths.empty());
  EXPECT_FALSE(ar.latest_paths[0].covered);
  EXPECT_EQ(ar.latest_paths[0].principals, kSetQ);
}

TEST(AnalyzeAuth, OverAuthorizedPunishTripsDA024) {
  // The punish gate key becomes known to BOTH parties at the revocation
  // event, but the annotation claims only Q may punish.
  const auto rev = crypto::derive_keypair("analyze-test/rev24");
  const Script rev_ws = script::single_key(rev.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(rev_ws);
  TxTemplate punish = spender("punish", out0(ts[0]), ts[0].body.outputs[0],
                              rev_ws, 0,
                              {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                              TemplateTag::kPunish);
  punish.inputs[0].intended = kSetQ;
  ts.push_back(std::move(punish));

  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "fund", kSetP);
  kb.add_key(rev.pk.compressed(), "rev", {}, kSetPQ, /*reveal_time=*/1);
  Report rep;
  auth_pass(std::move(ts), kb, rep);
  expect_only_auth(rep, "DA024");
}

TEST(AnalyzeAuth, HashOnlyGateTripsDA025) {
  // An accepting path gated only by a hash preimage binds no principal.
  const Bytes preimg(32, 0x5a);
  const Hash256 img = crypto::Sha256::double_hash(preimg);
  Script hs;
  hs.op(Op::OP_HASH256).push(img.view()).op(Op::OP_EQUAL);
  TxTemplate t = spender("hash-spend", analyze::template_outpoint("gfx/h"),
                         {100, tx::Condition::p2wsh(hs)}, hs, 0,
                         {{100, tx::Condition::p2wpkh(kA.pk.compressed())}});
  t.inputs[0].witness = {WitnessElem::constant(preimg)};
  KnowledgeBase kb;
  Report rep;
  auth_pass({std::move(t)}, kb, rep);
  expect_only_auth(rep, "DA025");
}

TEST(AnalyzeAuth, PrematurePunishTripsDA026) {
  // Q holds the punish key outright, so Q could punish commit state 0 at
  // time 0 — before its revocation event at time 1.
  const auto rev = crypto::derive_keypair("analyze-test/rev26");
  const Script rev_ws = script::single_key(rev.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(rev_ws);
  TxTemplate punish = spender("punish", out0(ts[0]), ts[0].body.outputs[0],
                              rev_ws, 0,
                              {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                              TemplateTag::kPunish);
  punish.inputs[0].intended = kSetQ;
  ts.push_back(std::move(punish));

  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "fund", kSetP);
  kb.add_key(rev.pk.compressed(), "rev", kSetQ);  // held from t=0, not revealed
  Report rep;
  auth_pass(std::move(ts), kb, rep);
  expect_only_auth(rep, "DA026");
}

TEST(AnalyzeAuth, KeyRoleHygieneTripsDA027) {
  // Same pubkey registered under two roles, plus a gate key with no
  // registration at all — both are DA027.
  const Script ws_a = script::single_key(kA.pk.compressed());
  const Script ws_b = script::single_key(kB.pk.compressed());
  std::vector<TxTemplate> ts;
  ts.push_back(spender("spend-a", analyze::template_outpoint("gfx/a"),
                       {100, tx::Condition::p2wsh(ws_a)}, ws_a, 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}}));
  ts.push_back(spender("spend-b", analyze::template_outpoint("gfx/b"),
                       {100, tx::Condition::p2wsh(ws_b)}, ws_b, 0,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}}));
  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "role-one", kSetP);
  kb.add_key(kA.pk.compressed(), "role-two", kSetP);  // conflict
  // kB deliberately unregistered.
  Report rep;
  auth_pass(std::move(ts), kb, rep);
  expect_only_auth(rep, "DA027");
  EXPECT_EQ(rep.error_count(), 2u) << rep.render();
}

TEST(AnalyzeAuth, SecretBeforeRevealTripsDA028) {
  // The intended spender needs a preimage that is only revealed at t=99,
  // far past the analysis time: no intended principal can satisfy the edge.
  const auto rev = crypto::derive_keypair("analyze-test/rev28");
  const Bytes preimg(32, 0x77);
  const Hash256 img = crypto::Sha256::double_hash(preimg);
  Script ws;
  ws.op(Op::OP_HASH256)
      .push(img.view())
      .op(Op::OP_EQUALVERIFY)
      .push(rev.pk.compressed())
      .op(Op::OP_CHECKSIG);
  std::vector<TxTemplate> ts = two_commits(ws);
  TxTemplate punish = spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 0,
                              {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                              TemplateTag::kPunish);
  punish.inputs[0].witness = {WitnessElem::sig(SighashFlag::kAll),
                              WitnessElem::constant(preimg)};
  punish.inputs[0].intended = kSetQ;
  ts.push_back(std::move(punish));

  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "fund", kSetP);
  kb.add_key(rev.pk.compressed(), "rev", kSetQ);
  kb.add_preimage(Bytes(img.view().begin(), img.view().end()), preimg,
                  "late-secret", {}, kSetQ, /*reveal_time=*/99);
  Report rep;
  auth_pass(std::move(ts), kb, rep);
  expect_only_auth(rep, "DA028");
}

TEST(AnalyzeAuth, RaceFilterSkipsUnsignableRivals) {
  // A rival sweep gated by a key nobody who can publish the stale commit
  // holds: with the auth filter the race disappears; without it, it is lost.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 2,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  const auto stranger = crypto::derive_keypair("analyze-test/stranger");
  ts.push_back(spender("rival-sweep", out0(ts[0]), ts[0].body.outputs[0],
                       csv_key_script(1, stranger), 1,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}}));

  KnowledgeBase kb;
  kb.add_key(kA.pk.compressed(), "fund", kSetP);
  kb.add_key(stranger.pk.compressed(), "stranger", {});  // nobody can sign it
  const SpendGraph g = analyze::build_spend_graph(std::move(ts));
  Report auth_rep;
  const AuthReport ar = analyze::analyze_authorization(g, kb, {}, auth_rep);

  Report unfiltered;
  const ReachReport r0 = analyze::analyze_reachability(g, {1, 10}, unfiltered);
  ASSERT_EQ(r0.races.size(), 1u);
  EXPECT_FALSE(r0.races[0].honest_wins);

  Report filtered;
  const ReachReport r1 = analyze::analyze_reachability(g, {1, 10}, filtered, &ar);
  EXPECT_TRUE(r1.races.empty()) << filtered.render();
  EXPECT_FALSE(filtered.has("DA021")) << filtered.render();
}

TEST(AnalyzeGraph, RebindLoopTripsDA022) {
  // A floating input whose witness program matches the template's own
  // output: with ANYPREVOUT the signature could rebind to what it creates.
  const Script ws = script::single_key(kA.pk.compressed());
  const tx::Output looped{100, tx::Condition::p2wsh(ws)};
  TxTemplate t = spender("loop", analyze::template_outpoint("gfx/loop"), looped,
                         ws, 0, {looped});
  t.inputs[0].rebindable = true;
  t.inputs[0].witness = {WitnessElem::sig(SighashFlag::kAllAnyPrevOut)};
  Report rep;
  graph_pass({std::move(t)}, rep);
  expect_only(rep, "DA022");
}

}  // namespace
}  // namespace daric
