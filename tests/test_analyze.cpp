// Static analyzer tests: every engine's template set must prove clean, and
// each lint must fire on a crafted broken fixture.
#include <gtest/gtest.h>

#include "src/analyze/engines.h"
#include "src/analyze/graph.h"
#include "src/analyze/interp.h"
#include "src/analyze/reach.h"
#include "src/analyze/lints.h"
#include "src/analyze/report.h"
#include "src/crypto/keys.h"
#include "src/daric/scripts.h"
#include "src/script/interpreter.h"
#include "src/script/standard.h"

namespace daric {
namespace {

using analyze::Report;
using analyze::TemplateInput;
using analyze::TxTemplate;
using analyze::WitnessElem;
using script::Op;
using script::Script;
using script::SighashFlag;

const auto kA = crypto::derive_keypair("analyze-test/A");
const auto kB = crypto::derive_keypair("analyze-test/B");

// --- Positive: the real protocol templates are sound ----------------------

TEST(AnalyzeEngines, AllFourEnginesLintClean) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string& engine : analyze::engine_names()) {
    const std::vector<TxTemplate> templates =
        analyze::engine_templates(engine, params, model);
    ASSERT_FALSE(templates.empty()) << engine;
    Report rep;
    analyze::lint_templates(templates, rep);
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_EQ(rep.warning_count(), 0u) << engine << ":\n" << rep.render();
  }
}

TEST(AnalyzeEngines, FeeableRevocationVariantLintsClean) {
  const verify::Options model;
  channel::ChannelParams params = analyze::params_for_model(model);
  params.feeable_revocations = true;
  Report rep;
  analyze::lint_templates(daricch::enumerate_templates(params, model), rep);
  EXPECT_EQ(rep.error_count(), 0u) << rep.render();
}

TEST(AnalyzeEngines, MoreStatesStayClean) {
  verify::Options model;
  model.max_updates = 6;
  const channel::ChannelParams params = analyze::params_for_model(model);
  Report rep;
  analyze::lint_templates(analyze::all_engine_templates(params, model), rep);
  EXPECT_EQ(rep.error_count(), 0u) << rep.render();
}

// --- Fixture helpers ------------------------------------------------------

TxTemplate p2wsh_fixture(const Script& ws, std::vector<WitnessElem> witness,
                         Amount in_cash = 100, Amount out_cash = 100) {
  TxTemplate t;
  t.engine = "fixture";
  t.name = "case";
  t.body.inputs = {{analyze::template_outpoint("fixture")}};
  t.body.nlocktime = 0;
  t.body.outputs = {{out_cash, tx::Condition::p2wpkh(kA.pk.compressed())}};
  TemplateInput in;
  in.spent = {in_cash, tx::Condition::p2wsh(ws)};
  in.witness_script = ws;
  in.witness = std::move(witness);
  t.inputs = {std::move(in)};
  return t;
}

Report lint_one(const TxTemplate& t) {
  Report rep;
  analyze::lint_templates({t}, rep);
  return rep;
}

Report lint_script_only(const Script& s) {
  Report rep;
  analyze::lint_script(s, "fixture", rep);
  return rep;
}

// --- Negative: each lint fires on its broken fixture ----------------------

TEST(AnalyzeLints, StackUnderflowDA001) {
  // 2-of-2 multisig needs [dummy, sigA, sigB]; the template only carries two.
  const Script ws = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const Report rep = lint_one(p2wsh_fixture(
      ws, {WitnessElem::empty(), WitnessElem::sig(SighashFlag::kAll)}));
  EXPECT_TRUE(rep.has("DA001")) << rep.render();
}

TEST(AnalyzeLints, UnbalancedConditionalDA002) {
  Script s;
  s.push(kA.pk.compressed()).op(Op::OP_CHECKSIG).op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(s).has("DA002"));

  Script open_if;
  open_if.op(Op::OP_IF).push(kA.pk.compressed()).op(Op::OP_CHECKSIG);
  EXPECT_TRUE(lint_script_only(open_if).has("DA002"));
}

TEST(AnalyzeLints, DeadBranchDA003) {
  // Constant condition: the false branch of OP_1 IF can never execute.
  Script constant_selector;
  constant_selector.op(Op::OP_1)
      .op(Op::OP_IF)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ELSE)
      .push(kB.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(constant_selector).has("DA003"));

  // Reachable but never accepting: the ELSE arm always aborts.
  Script return_else;
  return_else.op(Op::OP_IF)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG)
      .op(Op::OP_ELSE)
      .op(Op::OP_RETURN)
      .op(Op::OP_ENDIF);
  EXPECT_TRUE(lint_script_only(return_else).has("DA003"));
}

TEST(AnalyzeLints, UnspendableDA004) {
  Script s;
  s.op(Op::OP_RETURN);
  EXPECT_TRUE(lint_script_only(s).has("DA004"));

  // Constant EQUALVERIFY that can never hold.
  Script mismatch;
  mismatch.op(Op::OP_1).op(Op::OP_0).op(Op::OP_EQUALVERIFY).op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(mismatch).has("DA004"));
}

TEST(AnalyzeLints, AnyoneCanSpendDA005) {
  Script s;
  s.op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(s).has("DA005"));

  // A protocol script with a real signature gate must not trip the lint.
  const Report rep = lint_script_only(script::single_key(kA.pk.compressed()));
  EXPECT_FALSE(rep.has("DA005")) << rep.render();
}

TEST(AnalyzeLints, UncleanStackDA006) {
  Script s;
  s.push(kA.pk.compressed()).op(Op::OP_CHECKSIG).op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(s).has("DA006"));
}

TEST(AnalyzeLints, NonMinimalPushDA007) {
  Script s;
  s.push(Bytes{5}).op(Op::OP_DROP).push(kA.pk.compressed()).op(Op::OP_CHECKSIG);
  const Report rep = lint_script_only(s);
  EXPECT_TRUE(rep.has("DA007")) << rep.render();
}

TEST(AnalyzeLints, ResourceLimitDA008) {
  // Static: wire size past script::kMaxScriptSize.
  Script big;
  while (big.wire_size() <= script::kMaxScriptSize) big.push(Bytes(255, 0xab));
  EXPECT_TRUE(lint_script_only(big).has("DA008"));

  // Static: abstract stack depth past script::kMaxStackDepth.
  Script deep;
  for (std::size_t i = 0; i <= script::kMaxStackDepth; ++i) deep.op(Op::OP_1);
  EXPECT_TRUE(lint_script_only(deep).has("DA008"));
}

TEST(AnalyzeLints, CltvMismatchDA009) {
  Script s;
  s.num4(50)
      .op(Op::OP_CHECKLOCKTIMEVERIFY)
      .op(Op::OP_DROP)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG);
  TxTemplate t = p2wsh_fixture(s, {WitnessElem::sig(SighashFlag::kAll)});
  t.body.nlocktime = 10;  // < 50: the template can never satisfy its script
  EXPECT_TRUE(lint_one(t).has("DA009"));
  t.body.nlocktime = 50;
  EXPECT_FALSE(lint_one(t).has("DA009"));
}

TEST(AnalyzeLints, CsvMismatchDA010) {
  Script s;
  s.num4(5)
      .op(Op::OP_CHECKSEQUENCEVERIFY)
      .op(Op::OP_DROP)
      .push(kA.pk.compressed())
      .op(Op::OP_CHECKSIG);
  TxTemplate t = p2wsh_fixture(s, {WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].spend_age = 2;  // the protocol posts before the CSV matures
  EXPECT_TRUE(lint_one(t).has("DA010"));
  t.inputs[0].spend_age = 5;
  EXPECT_FALSE(lint_one(t).has("DA010"));
}

TEST(AnalyzeLints, SingleWithoutOutputDA011) {
  // Two inputs, one output: a SINGLE signature on input 1 has no digest.
  TxTemplate t;
  t.engine = "fixture";
  t.name = "single";
  t.body.inputs = {{analyze::template_outpoint("in0")},
                   {analyze::template_outpoint("in1")}};
  t.body.nlocktime = 0;
  t.body.outputs = {{100, tx::Condition::p2wpkh(kA.pk.compressed())}};
  auto p2wpkh_in = [&](const crypto::KeyPair& k, SighashFlag flag) {
    TemplateInput in;
    in.spent = {50, tx::Condition::p2wpkh(k.pk.compressed())};
    in.witness = {WitnessElem::sig(flag), WitnessElem::constant(k.pk.compressed())};
    return in;
  };
  t.inputs = {p2wpkh_in(kA, SighashFlag::kAll), p2wpkh_in(kB, SighashFlag::kSingle)};
  EXPECT_TRUE(lint_one(t).has("DA011"));
  t.inputs[1].witness[0] = WitnessElem::sig(SighashFlag::kAll);
  EXPECT_FALSE(lint_one(t).has("DA011"));
}

TEST(AnalyzeLints, RebindWithoutAnyprevoutDA012) {
  const Script ws = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  TxTemplate t = p2wsh_fixture(ws, {WitnessElem::empty(),
                                    WitnessElem::sig(SighashFlag::kAll),
                                    WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].rebindable = true;  // floating, but the signatures pin the outpoint
  EXPECT_TRUE(lint_one(t).has("DA012"));
  t.inputs[0].witness[1] = WitnessElem::sig(SighashFlag::kAllAnyPrevOut);
  t.inputs[0].witness[2] = WitnessElem::sig(SighashFlag::kAllAnyPrevOut);
  EXPECT_FALSE(lint_one(t).has("DA012"));
}

TEST(AnalyzeLints, WitnessProgramMismatchDA013) {
  const Script real = script::multisig_2of2(kA.pk.compressed(), kB.pk.compressed());
  const Script wrong = script::single_key(kA.pk.compressed());
  TxTemplate t = p2wsh_fixture(real, {WitnessElem::empty(),
                                      WitnessElem::sig(SighashFlag::kAll),
                                      WitnessElem::sig(SighashFlag::kAll)});
  t.inputs[0].witness_script = wrong;  // hash no longer matches the spent program
  EXPECT_TRUE(lint_one(t).has("DA013"));
}

TEST(AnalyzeLints, ValueOverflowDA015) {
  const Script ws = script::single_key(kA.pk.compressed());
  const TxTemplate t = p2wsh_fixture(ws, {WitnessElem::sig(SighashFlag::kAll)},
                                     /*in_cash=*/100, /*out_cash=*/200);
  EXPECT_TRUE(lint_one(t).has("DA015"));
}

TEST(AnalyzeLints, TemplateShapeDA017) {
  TxTemplate t = p2wsh_fixture(script::single_key(kA.pk.compressed()),
                               {WitnessElem::sig(SighashFlag::kAll)});
  t.body.inputs.push_back({analyze::template_outpoint("extra")});  // no input spec
  EXPECT_TRUE(lint_one(t).has("DA017"));
}

TEST(AnalyzeLints, SuppressionDropsFindings) {
  Script s;
  s.op(Op::OP_1);
  Report rep;
  rep.suppress("DA005");
  analyze::lint_script(s, "fixture", rep);
  EXPECT_FALSE(rep.has("DA005"));
  EXPECT_EQ(rep.error_count(), 0u);
}

// --- Interpreter limits: static constants are enforced dynamically too ----

class PermissiveChecker : public script::SigChecker {
 public:
  bool check_sig(BytesView, BytesView) const override { return true; }
  bool check_locktime(std::uint32_t) const override { return true; }
  bool check_sequence(std::uint32_t) const override { return true; }
};

TEST(InterpreterLimits, StackOverflowCaughtAtRuntime) {
  Script deep;
  for (std::size_t i = 0; i <= script::kMaxStackDepth; ++i) deep.op(Op::OP_1);
  std::vector<Bytes> stack;
  const PermissiveChecker checker;
  EXPECT_EQ(script::eval_script(deep, stack, checker), script::ScriptError::kStackOverflow);
}

TEST(InterpreterLimits, OversizedScriptRejectedAtRuntime) {
  Script big;
  while (big.wire_size() <= script::kMaxScriptSize) big.push(Bytes(255, 0xab));
  std::vector<Bytes> stack;
  const PermissiveChecker checker;
  EXPECT_EQ(script::eval_script(big, stack, checker), script::ScriptError::kScriptTooLarge);
}

TEST(InterpreterLimits, RealProtocolScriptsFitWithinLimits) {
  // The analyzer proves these statically; spot-check the shared constants.
  const Script commit = daricch::commit_script(kA.pk.compressed(), kB.pk.compressed(),
                                               kA.pk.compressed(), kB.pk.compressed(), 42, 10);
  EXPECT_LE(commit.wire_size(), script::kMaxScriptSize);
  const analyze::ScriptAnalysis an = analyze::analyze_script(commit);
  EXPECT_LE(an.max_depth, script::kMaxStackDepth);
}

// --- Spend graph: reachability, races, Theorem-1 bounds (DA018..DA022) ----

using analyze::ReachParams;
using analyze::ReachReport;
using analyze::SpendGraph;
using analyze::TemplateTag;

ReachReport graph_pass(std::vector<TxTemplate> templates, Report& rep,
                       ReachParams params = {}) {
  const SpendGraph g = analyze::build_spend_graph(std::move(templates));
  return analyze::analyze_reachability(g, params, rep);
}

/// Asserts that exactly `id` fired among the graph lints.
void expect_only(const Report& rep, const std::string& id) {
  for (const char* lint : {"DA018", "DA019", "DA020", "DA021", "DA022"}) {
    if (id == lint)
      EXPECT_TRUE(rep.has(lint)) << rep.render();
    else
      EXPECT_FALSE(rep.has(lint)) << rep.render();
  }
}

Script csv_key_script(std::uint32_t csv, const crypto::KeyPair& k) {
  Script s;
  s.num4(csv)
      .op(Op::OP_CHECKSEQUENCEVERIFY)
      .op(Op::OP_DROP)
      .push(k.pk.compressed())
      .op(Op::OP_CHECKSIG);
  return s;
}

Script cltv_key_script(std::uint32_t cltv, const crypto::KeyPair& k) {
  Script s;
  s.num4(cltv)
      .op(Op::OP_CHECKLOCKTIMEVERIFY)
      .op(Op::OP_DROP)
      .push(k.pk.compressed())
      .op(Op::OP_CHECKSIG);
  return s;
}

/// Template spending one prior output through a single-sig P2WSH script.
TxTemplate spender(const std::string& name, tx::OutPoint prev,
                   const tx::Output& spent, const Script& ws, Round age,
                   std::vector<tx::Output> outs,
                   TemplateTag tag = TemplateTag::kNeutral, int state = -1) {
  TxTemplate t;
  t.engine = "gfx";
  t.name = name;
  t.body.inputs = {{prev}};
  t.body.nlocktime = 0;
  t.body.outputs = std::move(outs);
  TemplateInput in;
  in.spent = spent;
  in.witness_script = ws;
  in.witness = {WitnessElem::sig(SighashFlag::kAll)};
  in.spend_age = age;
  t.inputs = {std::move(in)};
  t.tag = tag;
  t.state = state;
  return t;
}

/// A stale commit (state 0) + a latest commit (state 1) with terminal
/// outputs, both drawn from the same external funding root. The stale
/// commit's single output carries `out_ws`.
std::vector<TxTemplate> two_commits(const Script& out_ws) {
  const Script fund_ws = script::single_key(kA.pk.compressed());
  const tx::OutPoint fund = analyze::template_outpoint("gfx/fund");
  const tx::Output fund_out{100, tx::Condition::p2wsh(fund_ws)};
  std::vector<TxTemplate> ts;
  ts.push_back(spender("commit[0]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wsh(out_ws)}}, TemplateTag::kCommit, 0));
  ts.push_back(spender("commit[1]", fund, fund_out, fund_ws, 0,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}},
                       TemplateTag::kCommit, 1));
  return ts;
}

tx::OutPoint out0(const TxTemplate& t) { return {t.body.txid(), 0}; }

TEST(AnalyzeGraph, AllSixEnginesGraphClean) {
  const verify::Options model;  // Δ=1, T=3 → bound limit 2
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string& engine : analyze::engine_names()) {
    Report rep;
    ReachReport rr =
        graph_pass(analyze::engine_templates(engine, params, model), rep,
                   {model.delta, model.t_punish});
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_TRUE(rr.punish_reachable) << engine;
    EXPECT_GT(rr.stale_commits, 0u) << engine;
    EXPECT_EQ(rr.races_won(), rr.races.size()) << engine;
    EXPECT_GE(rr.theorem1_bound, 0) << engine;
    EXPECT_LE(rr.theorem1_bound, rr.bound_limit) << engine;
  }
}

TEST(AnalyzeGraph, DaricBoundMatchesTheorem1) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  Report rep;
  const ReachReport rr =
      graph_pass(analyze::engine_templates("daric", params, model), rep,
                 {model.delta, model.t_punish});
  // Revocation posts immediately (age 0): bound 2Δ = 2, limit T − Δ = 2.
  EXPECT_EQ(rr.theorem1_bound, 2);
  EXPECT_EQ(rr.bound_limit, 2);
}

TEST(AnalyzeGraph, CerberusAndFppwEnumerateNonEmpty) {
  const verify::Options model;
  const channel::ChannelParams params = analyze::params_for_model(model);
  for (const std::string engine : {"cerberus", "fppw"}) {
    const auto templates = analyze::engine_templates(engine, params, model);
    ASSERT_FALSE(templates.empty()) << engine;
    Report rep;
    analyze::lint_templates(templates, rep);
    EXPECT_EQ(rep.error_count(), 0u) << engine << ":\n" << rep.render();
    EXPECT_EQ(rep.warning_count(), 0u) << engine << ":\n" << rep.render();
  }
}

TEST(AnalyzeGraph, LatePunishTripsDA018) {
  // The only punish response waits 10 rounds: bound 1+10+1 = 12 > T−Δ = 2.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 10,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep);
  expect_only(rep, "DA018");
  EXPECT_EQ(rr.theorem1_bound, 12);
}

TEST(AnalyzeGraph, MissingPunishTripsDA018) {
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  // No punish template at all; the stale commit's output must still have a
  // spender or DA019 would (rightly) fire too — give it a neutral sweep.
  ts.push_back(spender("sweep", out0(ts[0]), ts[0].body.outputs[0], ws, 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}}));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep);
  expect_only(rep, "DA018");
  EXPECT_FALSE(rr.punish_reachable);
}

TEST(AnalyzeGraph, StrandedOutputTripsDA019) {
  // A reachable template leaves a P2WSH output nothing ever spends.
  const Script fund_ws = script::single_key(kA.pk.compressed());
  const tx::OutPoint fund = analyze::template_outpoint("gfx/fund");
  std::vector<TxTemplate> ts;
  ts.push_back(spender("strand", fund, {100, tx::Condition::p2wsh(fund_ws)},
                       fund_ws, 0,
                       {{100, tx::Condition::p2wsh(script::single_key(
                                  kB.pk.compressed()))}}));
  Report rep;
  graph_pass(std::move(ts), rep);
  expect_only(rep, "DA019");
}

TEST(AnalyzeGraph, DeadPunishTripsDA020) {
  // Two punish responses: a live one (keeps DA018 quiet) and one whose
  // script demands CLTV 50 that its nLockTime 0 body can never satisfy.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish-live", out0(ts[0]), ts[0].body.outputs[0], ws, 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  ts.push_back(spender("punish-dead", out0(ts[0]), ts[0].body.outputs[0],
                       cltv_key_script(50, kA), 0,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  Report rep;
  graph_pass(std::move(ts), rep);
  expect_only(rep, "DA020");
}

TEST(AnalyzeGraph, LostRaceTripsDA021) {
  // Punish waits 2 rounds but a consensus-only rival is includable after a
  // 1-round CSV: honest confirms at 1+2+1 = 4, rival includable from 1+1 = 2.
  // T = 10 keeps the DA018 bound (4 ≤ 9) quiet so only the race fires.
  const Script ws = script::single_key(kA.pk.compressed());
  std::vector<TxTemplate> ts = two_commits(ws);
  ts.push_back(spender("punish", out0(ts[0]), ts[0].body.outputs[0], ws, 2,
                       {{100, tx::Condition::p2wpkh(kA.pk.compressed())}},
                       TemplateTag::kPunish));
  ts.push_back(spender("rival-sweep", out0(ts[0]), ts[0].body.outputs[0],
                       csv_key_script(1, kB), 1,
                       {{100, tx::Condition::p2wpkh(kB.pk.compressed())}}));
  Report rep;
  const ReachReport rr = graph_pass(std::move(ts), rep, {1, 10});
  expect_only(rep, "DA021");
  ASSERT_EQ(rr.races.size(), 1u);
  EXPECT_FALSE(rr.races[0].honest_wins);
  EXPECT_EQ(rr.races[0].honest_confirm, 4);
  EXPECT_EQ(rr.races[0].rival_include, 2);
}

TEST(AnalyzeGraph, RebindLoopTripsDA022) {
  // A floating input whose witness program matches the template's own
  // output: with ANYPREVOUT the signature could rebind to what it creates.
  const Script ws = script::single_key(kA.pk.compressed());
  const tx::Output looped{100, tx::Condition::p2wsh(ws)};
  TxTemplate t = spender("loop", analyze::template_outpoint("gfx/loop"), looped,
                         ws, 0, {looped});
  t.inputs[0].rebindable = true;
  t.inputs[0].witness = {WitnessElem::sig(SighashFlag::kAllAnyPrevOut)};
  Report rep;
  graph_pass({std::move(t)}, rep);
  expect_only(rep, "DA022");
}

}  // namespace
}  // namespace daric
