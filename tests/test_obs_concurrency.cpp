// Concurrency torture for the sharded metrics registry. Run under
// ThreadSanitizer via tools/check.sh --obs: eight writer threads hammer
// counters, gauges and histograms while a reader snapshots concurrently,
// then exact totals are asserted after the join. Any data race, torn
// aggregate or lost increment fails here before it can corrupt a
// production snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace daric {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

TEST(ObsConcurrency, CountersAreExactAfterJoin) {
  obs::Registry reg;
  obs::Counter& shared = reg.counter("torture.shared");
  std::atomic<bool> stop{false};

  // Concurrent reader: aggregates while writers run. The value it sees must
  // never exceed the final total (relaxed adds only ever grow it).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t v = shared.value();
      ASSERT_LE(v, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
      (void)reg.snapshot_json();
      (void)reg.expose_text();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&shared] {
      for (int i = 0; i < kOpsPerThread; ++i) shared.inc();
    });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrency, HistogramTotalsAndBoundsSurviveContention) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("torture.hist");
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.quantiles();
      (void)h.nonempty_buckets();
    }
  });

  std::vector<std::thread> writers;
  std::int64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) expect_sum += (i % 1000) + 1;
    writers.emplace_back([&h] {
      for (int i = 0; i < kOpsPerThread; ++i) h.observe((i % 1000) + 1);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(h.sum(), expect_sum);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  std::uint64_t bucket_total = 0;
  for (const auto& [bound, n] : h.nonempty_buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_GE(h.quantiles().p999, h.quantiles().p50);
}

TEST(ObsConcurrency, GaugeAddsAggregateExactly) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("torture.gauge");
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&g, t] {
      const std::int64_t d = (t % 2 == 0) ? 3 : -1;
      for (int i = 0; i < kOpsPerThread; ++i) g.add(d);
    });
  for (auto& w : writers) w.join();
  // 4 threads add +3, 4 threads add -1: net +2 per op pair of threads.
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kOpsPerThread) * (4 * 3 - 4 * 1));
}

TEST(ObsConcurrency, RegistryLookupsRaceSafely) {
  // First-use creation racing lookups of the same and different names.
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 2000; ++i) {
        reg.counter("race.shared").inc();
        reg.counter("race.t" + std::to_string(t)).inc();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("race.shared").value(), static_cast<std::uint64_t>(kThreads) * 2000);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("race.t" + std::to_string(t)).value(), 2000u);
}

TEST(ObsConcurrency, SpansToggleUnderFire) {
  // Threads run spans while another thread toggles the global enable flag:
  // the macro's one-relaxed-load gate and the lazy handle bind must be
  // race-free. Counts are not asserted (toggling makes them nondeterministic)
  // — this test exists for TSan.
  std::atomic<bool> stop{false};
  std::thread toggler([&stop] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::set_spans_enabled(on = !on);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < 5000; ++i) {
        OBS_SPAN("torture.span");
      }
    });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  obs::set_spans_enabled(false);
  // Whatever was recorded must be internally consistent.
  obs::Histogram& h = obs::span_histogram("torture.span");
  std::uint64_t bucket_total = 0;
  for (const auto& [bound, n] : h.nonempty_buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

}  // namespace
}  // namespace daric
