// Durable store: CRC32C vectors, backend semantics, record-log torn-tail
// recovery (property + byte-level fuzz), the channel store's durability
// hook wired through the Daric engine, snapshot format gating, and the
// O(1)-per-channel TowerService.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/crypto/sig_scheme.h"
#include "src/daric/persistence.h"
#include "src/daric/protocol.h"
#include "src/daric/watchtower.h"
#include "src/sim/faults/drill.h"
#include "src/sim/faults/rng.h"
#include "src/store/backend.h"
#include "src/store/channel_store.h"
#include "src/store/crc32c.h"
#include "src/store/log.h"
#include "src/store/metrics_log.h"
#include "src/store/tower.h"

namespace daric {
namespace {

using sim::PartyId;
using sim::faults::Rng;

constexpr Round kDelta = 2;

channel::ChannelParams make_params(const std::string& id) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = 6;
  return p;
}

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (Byte& x : b) x = static_cast<Byte>(rng.below(256));
  return b;
}

// --- CRC-32C --------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  const Bytes check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(store::crc32c(check), 0xE3069283u);
  EXPECT_EQ(store::crc32c({}), 0x00000000u);
  // RFC 3720 iSCSI test vectors.
  EXPECT_EQ(store::crc32c(Bytes(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(store::crc32c(Bytes(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  Rng rng(0xc12cull);
  const Bytes data = random_bytes(rng, 257);
  const std::uint32_t whole = store::crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    std::uint32_t crc = store::crc32c_extend(0, BytesView{data}.subspan(0, cut));
    crc = store::crc32c_extend(crc, BytesView{data}.subspan(cut));
    EXPECT_EQ(crc, whole) << "split at " << cut;
  }
}

// --- Backends -------------------------------------------------------------

TEST(MemoryBackend, SyncedWatermark) {
  store::MemoryBackend b;
  b.append(Bytes{1, 2, 3});
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.synced_size(), 0u);
  EXPECT_TRUE(b.durable_image().empty());  // a crash now loses everything
  b.sync();
  b.append(Bytes{4, 5});
  EXPECT_EQ(b.synced_size(), 3u);
  EXPECT_EQ(b.durable_image(), (Bytes{1, 2, 3}));
  b.truncate(1);
  EXPECT_EQ(b.size(), 1u);
  b.replace(Bytes{9, 9});
  EXPECT_EQ(b.durable_image(), (Bytes{9, 9}));  // replace is durable
}

TEST(FileBackend, RoundTripReplaceTruncate) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "daric_store_file.log").string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  {
    store::FileBackend b(path);
    EXPECT_EQ(b.size(), 0u);
    b.append(Bytes{1, 2, 3, 4});
    b.sync();
    b.append(Bytes{5, 6});
    EXPECT_EQ(b.size(), 6u);
    EXPECT_EQ(b.read(2, 3), (Bytes{3, 4, 5}));
  }
  {
    store::FileBackend b(path);  // reopen: everything written survives
    EXPECT_EQ(b.read_all(), (Bytes{1, 2, 3, 4, 5, 6}));
    b.truncate(4);
    EXPECT_EQ(b.read_all(), (Bytes{1, 2, 3, 4}));
    b.replace(Bytes{7, 8, 9});
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // rename landed
  }
  store::FileBackend b(path);
  EXPECT_EQ(b.read_all(), (Bytes{7, 8, 9}));
  std::filesystem::remove(path);
}

// --- Record log -----------------------------------------------------------

std::vector<Bytes> fill_log(store::StorageBackend& b, Rng& rng, std::size_t n) {
  store::init_log(b);
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < n; ++i) {
    payloads.push_back(random_bytes(rng, rng.below(120)));
    store::append_record(b, payloads.back());
  }
  b.sync();
  return payloads;
}

TEST(RecordLog, RoundTripsManyRecords) {
  Rng rng(0x5109ull);
  store::MemoryBackend b;
  const std::vector<Bytes> payloads = fill_log(b, rng, 100);
  const store::RecoveredLog rec = store::recover_records(b);
  EXPECT_EQ(rec.result.status, store::LogStatus::kOk);
  EXPECT_EQ(rec.result.records, 100u);
  EXPECT_EQ(rec.result.dropped_bytes, 0u);
  EXPECT_EQ(rec.records, payloads);
}

TEST(RecordLog, EveryTruncationYieldsValidPrefix) {
  Rng rng(0x7249ull);
  store::MemoryBackend full;
  const std::vector<Bytes> payloads = fill_log(full, rng, 8);
  const Bytes image = full.read_all();
  for (std::size_t cut = store::kLogHeaderSize; cut < image.size(); ++cut) {
    store::MemoryBackend b;
    b.replace(BytesView{image}.subspan(0, cut));
    std::vector<Bytes> got;
    store::ScanResult res;
    ASSERT_NO_THROW(res = store::scan_log(
                        b, [&](std::size_t, BytesView p) { got.emplace_back(p.begin(), p.end()); }))
        << "cut at " << cut;
    ASSERT_LE(got.size(), payloads.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], payloads[i]);
    EXPECT_EQ(res.valid_bytes + res.dropped_bytes, cut);
    // A cut at an exact record boundary is indistinguishable from a
    // shorter log (kOk, nothing dropped); anywhere else is a torn tail.
    if (res.status == store::LogStatus::kOk) EXPECT_EQ(res.dropped_bytes, 0u);
    else EXPECT_GT(res.dropped_bytes, 0u);
  }
}

TEST(RecordLog, ByteFlipsNeverYieldHalfAppliedRecords) {
  Rng rng(0xf11bull);
  store::MemoryBackend full;
  const std::vector<Bytes> payloads = fill_log(full, rng, 6);
  const Bytes image = full.read_all();
  for (std::size_t i = 0; i < image.size(); ++i) {
    Bytes mutated = image;
    mutated[i] ^= static_cast<Byte>(1u << (i % 8));
    store::MemoryBackend b;
    b.replace(mutated);
    std::vector<Bytes> got;
    store::ScanResult res;
    ASSERT_NO_THROW(res = store::scan_log(
                        b, [&](std::size_t, BytesView p) { got.emplace_back(p.begin(), p.end()); }))
        << "flip at " << i;
    if (i < store::kLogHeaderSize) {
      EXPECT_EQ(res.status, store::LogStatus::kBadHeader);
      EXPECT_TRUE(got.empty());
      continue;
    }
    // Anywhere else: recovery yields an intact prefix, never a mutated or
    // half-applied record.
    ASSERT_LT(got.size(), payloads.size()) << "flip at " << i;
    for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], payloads[k]);
    EXPECT_EQ(res.status, store::LogStatus::kTornTail);
    EXPECT_EQ(res.valid_bytes + res.dropped_bytes, image.size());
  }
}

TEST(RecordLog, RecoverTruncatesTornTail) {
  Rng rng(0x70bcull);
  store::MemoryBackend b;
  fill_log(b, rng, 5);
  const std::size_t intact = b.size();
  const Bytes frame = store::encode_record(Bytes(40, 0xab));
  b.append(BytesView{frame}.subspan(0, frame.size() / 2));  // torn write
  b.sync();

  const store::ScanResult res = store::recover_log(b, [](std::size_t, BytesView) {});
  EXPECT_EQ(res.status, store::LogStatus::kTornTail);
  EXPECT_EQ(res.valid_bytes, intact);
  EXPECT_EQ(b.size(), intact);  // physically truncated
  // The log is clean again: appends land after the last valid record.
  store::append_record(b, Bytes{1, 2, 3});
  b.sync();
  const store::RecoveredLog again = store::recover_records(b);
  EXPECT_EQ(again.result.status, store::LogStatus::kOk);
  EXPECT_EQ(again.result.records, 6u);
}

TEST(RecordLog, BadHeaderResetsImage) {
  store::MemoryBackend b;
  b.replace(Bytes{'n', 'o', 'p', 'e', 9, 1, 2, 3});
  const store::ScanResult res = store::recover_log(b, [](std::size_t, BytesView) {});
  EXPECT_EQ(res.status, store::LogStatus::kBadHeader);
  EXPECT_EQ(b.size(), store::kLogHeaderSize);  // fresh header, nothing else
  EXPECT_EQ(store::recover_records(b).result.status, store::LogStatus::kOk);
}

TEST(RecordLog, AbsurdLengthFieldRejectedWithoutAllocating) {
  store::MemoryBackend b;
  store::init_log(b);
  store::append_record(b, Bytes{7, 7});
  // Hand-crafted frame claiming a payload far past kMaxRecordPayload.
  Bytes evil(8, 0xff);
  b.append(evil);
  const store::RecoveredLog rec = store::recover_records(b);
  EXPECT_EQ(rec.result.status, store::LogStatus::kTornTail);
  EXPECT_EQ(rec.result.records, 1u);
}

// --- ChannelStore ---------------------------------------------------------

TEST(ChannelStore, PutGetEraseAndRecover) {
  store::MemoryBackend b;
  {
    store::ChannelStore cs(b);
    cs.put("alpha", Bytes{1, 2, 3});
    cs.put("beta", Bytes{4});
    cs.put("alpha", Bytes{9, 9});  // overwrite
    cs.erase("beta");
    ASSERT_NE(cs.get("alpha"), nullptr);
    EXPECT_EQ(*cs.get("alpha"), (Bytes{9, 9}));
    EXPECT_EQ(cs.get("beta"), nullptr);
    EXPECT_EQ(cs.live_count(), 1u);
  }
  // Crash: only the synced image survives; every mutation above synced.
  store::MemoryBackend after;
  after.replace(b.durable_image());
  store::ChannelStore cs(after);
  EXPECT_EQ(cs.recovery().status, store::LogStatus::kOk);
  EXPECT_EQ(cs.live_count(), 1u);
  ASSERT_NE(cs.get("alpha"), nullptr);
  EXPECT_EQ(*cs.get("alpha"), (Bytes{9, 9}));
}

TEST(ChannelStore, CompactionKeepsLogProportionalToLiveBytes) {
  store::MemoryBackend b;
  store::ChannelStore cs(b);
  const Bytes blob(100, 0x5a);
  for (int i = 0; i < 500; ++i) cs.put("chan", blob);
  // Auto-compaction must keep the log within a constant factor of the one
  // live record instead of the 500 appended generations.
  EXPECT_LT(cs.log_bytes(), 4096u);
  cs.compact();
  EXPECT_EQ(cs.log_bytes(), store::kLogHeaderSize + store::kRecordFrameOverhead +
                                store::encode_put("chan", blob).size());
  ASSERT_NE(cs.get("chan"), nullptr);
  EXPECT_EQ(*cs.get("chan"), blob);
}

TEST(ChannelStore, TornTailTruncatedOnRecovery) {
  store::MemoryBackend b;
  {
    store::ChannelStore cs(b);
    cs.put("k", Bytes{1, 2, 3});
  }
  Bytes image = b.durable_image();
  const Bytes frame = store::encode_record(store::encode_put("k", Bytes(64, 0xcd)));
  image.insert(image.end(), frame.begin(), frame.begin() + 11);  // torn
  store::MemoryBackend crashed;
  crashed.replace(image);
  store::ChannelStore cs(crashed);
  EXPECT_EQ(cs.recovery().status, store::LogStatus::kTornTail);
  EXPECT_GT(cs.recovery().dropped_bytes, 0u);
  ASSERT_NE(cs.get("k"), nullptr);
  EXPECT_EQ(*cs.get("k"), (Bytes{1, 2, 3}));
}

// --- Snapshot format gate -------------------------------------------------

struct ChannelFixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  daricch::DaricChannel ch;
  explicit ChannelFixture(const std::string& id) : ch(env, make_params(id)) {}
};

TEST(SnapshotFormat, MagicAndVersionGate) {
  ChannelFixture f("snapfmt-1");
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({450'000, 550'000, {}}));
  const Bytes blob =
      daricch::serialize_snapshot(daricch::snapshot_party(f.ch.party(PartyId::kA)));
  ASSERT_GT(blob.size(), 5u);
  EXPECT_EQ(blob[0], 'D');
  EXPECT_EQ(blob[4], daricch::kSnapshotVersion);
  EXPECT_NO_THROW(daricch::deserialize_snapshot(blob));

  Bytes bad_magic = blob;
  bad_magic[1] ^= 0x20;
  EXPECT_THROW(daricch::deserialize_snapshot(bad_magic), std::invalid_argument);

  Bytes future = blob;
  future[4] = daricch::kSnapshotVersion + 1;  // unknown future format
  try {
    daricch::deserialize_snapshot(future);
    FAIL() << "future version accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotFormat, ThetaCoveragePastSnRejected) {
  ChannelFixture f("snapfmt-2");
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({400'000, 600'000, {}}));
  daricch::ChannelSnapshot s = daricch::snapshot_party(f.ch.party(PartyId::kB));
  s.theta_state = s.sn + 1;  // claims a revocation it cannot hold
  EXPECT_THROW(daricch::deserialize_snapshot(daricch::serialize_snapshot(s)),
               std::invalid_argument);
}

// --- Durability hook through the engine -----------------------------------

TEST(Durability, EngineRecoversLatestStateFromStore) {
  ChannelFixture f("durable-1");
  store::MemoryBackend ba, bb;
  store::ChannelStore sa(ba), sb(bb);
  f.ch.party(PartyId::kA).set_durability_hook(&sa);
  f.ch.party(PartyId::kB).set_durability_hook(&sb);
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({450'000, 550'000, {}}));
  ASSERT_TRUE(f.ch.update({300'000, 700'000, {}}));

  // B's process dies; only its durable image survives.
  f.ch.party(PartyId::kB).set_online(false);
  store::MemoryBackend crashed;
  crashed.replace(bb.durable_image());
  store::ChannelStore rec(crashed);
  const Bytes* blob = rec.get(store::ChannelStore::channel_key(f.ch.party(PartyId::kB)));
  ASSERT_NE(blob, nullptr);
  const daricch::ChannelSnapshot snap = daricch::deserialize_snapshot(*blob);
  EXPECT_EQ(snap.sn, 2u);
  EXPECT_EQ(snap.theta_state, 2u);  // stable: Θ covers everything below sn
  EXPECT_EQ(snap.st.to_b, 700'000);

  daricch::RestoredParty restored(f.env, snap);
  f.env.add_round_hook([&restored] { restored.on_round(); });
  restored.force_close();
  for (int r = 0; r < 100 && !restored.done(); ++r) f.env.advance_round();
  EXPECT_TRUE(restored.done());
  EXPECT_EQ(restored.outcome(), daricch::CloseOutcome::kNonCollaborative);
}

TEST(Durability, MidUpdateCrashRecoversWithoutPunishableRegression) {
  ChannelFixture f("durable-2");
  store::MemoryBackend ba, bb;
  store::ChannelStore sa(ba), sb(bb);
  f.ch.party(PartyId::kA).set_durability_hook(&sa);
  f.ch.party(PartyId::kB).set_durability_hook(&sb);
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({450'000, 550'000, {}}));

  // A dies right before sending its revocation (message 5): the new state
  // is fully signed and durable, A's own revocation never left the box.
  f.ch.party(PartyId::kA).set_online(false);
  f.ch.party(PartyId::kA).behavior.abort_update_before_msg = 5;
  ASSERT_FALSE(f.ch.update({200'000, 800'000, {}}));  // B force-closes

  store::MemoryBackend crashed;
  crashed.replace(ba.durable_image());
  store::ChannelStore rec(crashed);
  const Bytes* blob = rec.get(store::ChannelStore::channel_key(f.ch.party(PartyId::kA)));
  ASSERT_NE(blob, nullptr);
  const daricch::ChannelSnapshot snap = daricch::deserialize_snapshot(*blob);
  EXPECT_EQ(snap.sn, 2u);          // Γ advanced: the new commit is signed
  EXPECT_EQ(snap.theta_state, 1u); // Θ did not: sn-1 was never revoked
  EXPECT_EQ(snap.st.to_a, 200'000);

  daricch::RestoredParty restored(f.env, snap);
  f.env.add_round_hook([&restored] { restored.on_round(); });
  restored.force_close();
  for (int r = 0; r < 200 && !restored.done(); ++r) f.env.advance_round();
  EXPECT_TRUE(restored.done());
  // B closed at the new state; the restored monitor must treat it as the
  // latest (split path), never as fraud to punish.
  EXPECT_EQ(restored.outcome(), daricch::CloseOutcome::kNonCollaborative);
}

TEST(Durability, CooperativeCloseErasesStoreRecords) {
  ChannelFixture f("durable-3");
  store::MemoryBackend ba, bb;
  store::ChannelStore sa(ba), sb(bb);
  f.ch.party(PartyId::kA).set_durability_hook(&sa);
  f.ch.party(PartyId::kB).set_durability_hook(&sb);
  ASSERT_TRUE(f.ch.create());
  EXPECT_EQ(sa.live_count(), 1u);
  ASSERT_TRUE(f.ch.update({480'000, 520'000, {}}));
  ASSERT_TRUE(f.ch.cooperative_close(PartyId::kA));
  EXPECT_EQ(sa.live_count(), 0u);
  EXPECT_EQ(sb.live_count(), 0u);
}

TEST(Durability, PersistCounterPublished) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("durable-4"));
  store::MemoryBackend ba;
  store::ChannelStore sa(ba, &env.metrics());
  ch.party(PartyId::kA).set_durability_hook(&sa);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({450'000, 550'000, {}}));
  // create + mid-update + post-promotion persists, all through the hook.
  EXPECT_GE(env.metrics().counter("store.persists").value(), 3);
  EXPECT_EQ(env.metrics().gauge("store.live_channels").value(), 1);
}

// --- Monitor downtime accounting (Theorem 1 from metrics) -----------------

TEST(MonitorGap, OfflineRoundsCountedPerParty) {
  ChannelFixture f("gap-1");
  ASSERT_TRUE(f.ch.create());
  daricch::DaricParty& a = f.ch.party(PartyId::kA);
  obs::Registry& m = f.env.metrics();
  a.bind_monitor_metrics(&m.counter("monitor.missed.A"), &m.gauge("monitor.gap.A"));

  a.set_online(false);
  for (int i = 0; i < 5; ++i) f.env.advance_round();
  a.set_online(true);
  f.env.advance_round();
  a.set_online(false);
  for (int i = 0; i < 3; ++i) f.env.advance_round();

  EXPECT_EQ(a.missed_rounds(), 8);
  EXPECT_EQ(a.max_offline_gap(), 5);  // longest contiguous blackout
  EXPECT_EQ(m.counter("monitor.missed.A").value(), 8);
  EXPECT_EQ(m.gauge("monitor.gap.A").value(), 5);
}

TEST(MonitorGap, BoundaryReportsObservedGap) {
  using sim::faults::run_downtime_boundary;
  const Round t = 8, d = 2;
  const sim::faults::BoundaryReport safe = run_downtime_boundary(t - d, t, d);
  EXPECT_TRUE(safe.punished);
  EXPECT_EQ(safe.observed_gap, t - d);
  const sim::faults::BoundaryReport lost = run_downtime_boundary(t - d + 1, t, d);
  EXPECT_TRUE(lost.funds_lost);
  EXPECT_EQ(lost.observed_gap, t - d + 1);
  // Theorem 1 stated off the observed series: safe iff gap ≤ T − Δ.
  EXPECT_LE(safe.observed_gap, t - d);
  EXPECT_GT(lost.observed_gap, t - d);
}

// --- TowerService ---------------------------------------------------------

TEST(MetricsLog, SnapshotsPersistRecoverAndSelfCompact) {
  store::MemoryBackend backend;
  {
    store::MetricsLog mlog(backend, /*keep=*/4);
    obs::Registry reg;
    obs::Counter& updates = reg.counter("daric.updates");
    obs::Histogram& weight = reg.histogram("daric.onchain_weight");
    for (std::uint64_t round = 1; round <= 12; ++round) {
      updates.inc();
      weight.observe(static_cast<std::int64_t>(100 * round));
      mlog.snapshot(reg, round);
    }
    // keep=4: the log compacts once it holds more than 8 snapshots, so
    // retention stays bounded no matter how long the node runs.
    EXPECT_GE(mlog.compactions(), 1u);
    EXPECT_LE(mlog.retained(), 8u);
    ASSERT_FALSE(mlog.history().empty());
    EXPECT_NE(mlog.history().back().find("\"round\":12"), std::string::npos);
    EXPECT_NE(mlog.history().back().find("\"daric.updates\":12"), std::string::npos);
  }
  // Recovery: a fresh MetricsLog (and the static reader) see the same tail.
  const std::vector<std::string> recovered = store::MetricsLog::recover(backend);
  ASSERT_FALSE(recovered.empty());
  EXPECT_NE(recovered.back().find("\"round\":12"), std::string::npos);
  store::MetricsLog reopened(backend);
  EXPECT_EQ(reopened.history(), recovered);
}

TEST(MetricsLog, TornTailDropsOnlyTheLastSnapshot) {
  store::MemoryBackend backend;
  store::MetricsLog mlog(backend, 8);
  obs::Registry reg;
  reg.counter("c").inc();
  mlog.snapshot(reg, 1);
  mlog.snapshot(reg, 2);
  // Torn write: chop bytes off the final record.
  backend.truncate(backend.size() - 3);
  const std::vector<std::string> recovered = store::MetricsLog::recover(backend);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_NE(recovered[0].find("\"round\":1"), std::string::npos);
}

TEST(Tower, WatchEntryRoundTrips) {
  ChannelFixture f("tower-rt");
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({450'000, 550'000, {}}));
  const store::WatchEntry e = store::make_watch_entry(
      f.ch.params(), PartyId::kB, f.ch.funding_outpoint(), f.ch.party(PartyId::kA).pub(),
      f.ch.party(PartyId::kB).pub(),
      daricch::make_watchtower_package(f.ch.party(PartyId::kB)));
  const store::WatchEntry back =
      store::deserialize_watch_entry(store::serialize_watch_entry(e));
  EXPECT_EQ(back.fund_op, e.fund_op);
  EXPECT_EQ(back.channel_id, e.channel_id);
  EXPECT_EQ(back.client, e.client);
  EXPECT_EQ(back.revoked_state, e.revoked_state);
  EXPECT_EQ(back.rv_body.txid(), e.rv_body.txid());
  EXPECT_EQ(back.sig_a, e.sig_a);
  EXPECT_EQ(back.sig_b, e.sig_b);
  EXPECT_THROW(
      store::deserialize_watch_entry(
          BytesView{store::serialize_watch_entry(e)}.subspan(0, 20)),
      std::exception);
}

TEST(Tower, PunishesRevokedCommitAndSurvivesRestart) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  std::vector<std::unique_ptr<daricch::DaricChannel>> chans;
  for (int i = 0; i < 3; ++i) {
    chans.push_back(std::make_unique<daricch::DaricChannel>(
        env, make_params("tower-" + std::to_string(i))));
    ASSERT_TRUE(chans.back()->create());
    ASSERT_TRUE(chans.back()->update({450'000, 550'000, {}}));
    ASSERT_TRUE(chans.back()->update({400'000, 600'000, {}}));
  }

  store::MemoryBackend disk;
  store::TowerService tower(disk, &env.metrics());
  for (auto& ch : chans) {
    tower.watch(store::make_watch_entry(
        ch->params(), PartyId::kB, ch->funding_outpoint(), ch->party(PartyId::kA).pub(),
        ch->party(PartyId::kB).pub(),
        daricch::make_watchtower_package(ch->party(PartyId::kB))));
  }
  EXPECT_EQ(tower.channels(), 3u);
  env.add_round_hook([&] { tower.on_round(env.ledger()); });

  // Channel 1's A publishes its revoked state-0 commit; both clients stay
  // dark — only the tower can punish.
  chans[1]->party(PartyId::kA).set_online(false);
  chans[1]->party(PartyId::kB).set_online(false);
  const Hash256 cheat_txid = chans[1]->archived_commits(PartyId::kA)[0].txid();
  chans[1]->publish_old_commit(PartyId::kA, 0);
  env.advance_rounds(10);

  EXPECT_EQ(tower.reactions(), 1u);
  EXPECT_EQ(tower.channels(), 2u);  // spent funding outpoint retired
  const auto spender = env.ledger().spender_of({cheat_txid, 0});
  ASSERT_TRUE(spender.has_value());  // the revocation landed on-chain
  EXPECT_EQ(env.metrics().counter("tower.reactions").value(), 1);

  // Restart from the same disk image: the survivors are still watched.
  store::TowerService reborn(disk);
  EXPECT_EQ(reborn.recovery().status, store::LogStatus::kOk);
  EXPECT_EQ(reborn.channels(), 2u);
}

TEST(Tower, PackageUpdatesCompactToConstantPerChannel) {
  ChannelFixture f("tower-compact");
  ASSERT_TRUE(f.ch.create());
  store::MemoryBackend disk;
  store::TowerService tower(disk);
  std::size_t entry_bytes = 0;
  for (int u = 1; u <= 60; ++u) {
    ASSERT_TRUE(f.ch.update({500'000 - 1'000 * u, 500'000 + 1'000 * u, {}}));
    const store::WatchEntry e = store::make_watch_entry(
        f.ch.params(), PartyId::kB, f.ch.funding_outpoint(), f.ch.party(PartyId::kA).pub(),
        f.ch.party(PartyId::kB).pub(),
        daricch::make_watchtower_package(f.ch.party(PartyId::kB)));
    entry_bytes = store::serialize_watch_entry(e).size();
    tower.watch(e);
  }
  EXPECT_EQ(tower.channels(), 1u);
  EXPECT_EQ(tower.live_record_bytes(), entry_bytes + 1);  // + kind byte
  // 60 generations appended, yet the log stays within the compaction
  // factor of one live record — the O(1) Table-1 bound on disk.
  EXPECT_LT(tower.storage_bytes(),
            2 * (tower.live_record_bytes() + store::kRecordFrameOverhead +
                 store::kLogHeaderSize) + 8192);
  tower.compact();
  EXPECT_EQ(tower.storage_bytes(), store::kLogHeaderSize +
                                       store::kRecordFrameOverhead +
                                       tower.live_record_bytes());

  tower.retire(f.ch.funding_outpoint());
  EXPECT_EQ(tower.channels(), 0u);
  store::TowerService reborn(disk);
  EXPECT_EQ(reborn.channels(), 0u);  // tombstone replayed
}

TEST(Tower, TornTailOnRestoreKeepsIntactChannels) {
  ChannelFixture f("tower-torn");
  ASSERT_TRUE(f.ch.create());
  ASSERT_TRUE(f.ch.update({450'000, 550'000, {}}));
  store::MemoryBackend disk;
  {
    store::TowerService tower(disk);
    tower.watch(store::make_watch_entry(
        f.ch.params(), PartyId::kB, f.ch.funding_outpoint(), f.ch.party(PartyId::kA).pub(),
        f.ch.party(PartyId::kB).pub(),
        daricch::make_watchtower_package(f.ch.party(PartyId::kB))));
  }
  disk.append(Bytes(13, 0xee));  // garbage after the synced prefix
  disk.sync();
  store::TowerService tower(disk);
  EXPECT_EQ(tower.recovery().status, store::LogStatus::kTornTail);
  EXPECT_EQ(tower.channels(), 1u);
}

}  // namespace
}  // namespace daric
