// Extension features of Sec. 8 and the UC machinery: payment-channel
// network routing, fee-bumped revocations (SINGLE|ANYPREVOUT), channel
// reset, the ideal-functionality conformance checker, and the Lightning
// watchtower's O(n) storage.
#include <gtest/gtest.h>

#include "src/daric/fees.h"
#include "src/daric/reset.h"
#include "src/lightning/watchtower.h"
#include "src/pcn/network.h"
#include "src/uc/conformance.h"

namespace daric {
namespace {

using channel::StateVec;
using daricch::CloseOutcome;
using sim::PartyId;

constexpr Round kDelta = 2;

channel::ChannelParams make_params(const std::string& id) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = 6;
  return p;
}

// --- PCN ------------------------------------------------------------------

struct PcnFixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  pcn::PaymentNetwork net{env};

  PcnFixture() {
    for (const char* n : {"alice", "bob", "carol", "dave"}) net.add_node(n);
    net.open_channel("alice", "bob", 500'000, 500'000);
    net.open_channel("bob", "carol", 500'000, 500'000);
    net.open_channel("carol", "dave", 500'000, 500'000);
  }
};

TEST(Pcn, RouteAlongLineTopology) {
  PcnFixture f;
  const auto route = f.net.find_route("alice", "dave", 100'000);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 3u);
  EXPECT_TRUE((*route)[0].forward);
}

TEST(Pcn, NoRouteWhenLiquidityInsufficient) {
  PcnFixture f;
  EXPECT_FALSE(f.net.find_route("alice", "dave", 600'000).has_value());
  EXPECT_FALSE(f.net.find_route("alice", "zed", 1).has_value());
}

TEST(Pcn, MultiHopPaymentMovesBalances) {
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  const Amount d0 = f.net.balance("dave");
  ASSERT_TRUE(f.net.pay("alice", "dave", 120'000));
  EXPECT_EQ(f.net.balance("alice"), a0 - 120'000);
  EXPECT_EQ(f.net.balance("dave"), d0 + 120'000);
  // Intermediaries net to zero.
  EXPECT_EQ(f.net.balance("bob"), 1'000'000);
  EXPECT_EQ(f.net.balance("carol"), 1'000'000);
  EXPECT_EQ(f.net.payments_completed(), 1);
}

TEST(Pcn, ReverseDirectionPayment) {
  PcnFixture f;
  ASSERT_TRUE(f.net.pay("dave", "alice", 80'000));
  EXPECT_EQ(f.net.balance("alice"), 1'080'000 - 500'000);  // alice has 1 channel
}

TEST(Pcn, PaymentsAreFullyOffChain) {
  PcnFixture f;
  const std::size_t before = f.env.ledger().accepted().size();
  ASSERT_TRUE(f.net.pay("alice", "dave", 50'000));
  ASSERT_TRUE(f.net.pay("dave", "alice", 10'000));
  EXPECT_EQ(f.env.ledger().accepted().size(), before);
}

TEST(Pcn, OfflineHopFailsAndRollsBack) {
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  f.net.set_offline("carol", true);
  EXPECT_FALSE(f.net.pay("alice", "dave", 60'000));
  EXPECT_EQ(f.net.balance("alice"), a0);  // HTLC lock rolled back
  f.net.set_offline("carol", false);
  EXPECT_TRUE(f.net.pay("alice", "dave", 60'000));
}

TEST(Pcn, LiquidityExhaustionAfterPayments) {
  PcnFixture f;
  ASSERT_TRUE(f.net.pay("alice", "dave", 490'000));
  // alice -> bob channel now has ~10k of alice-side liquidity left.
  EXPECT_FALSE(f.net.pay("alice", "dave", 100'000));
  // But the reverse direction is fat now.
  EXPECT_TRUE(f.net.pay("dave", "alice", 400'000));
}

TEST(Pcn, OfflineRecipientRollsBackLockedHops) {
  // Routing can avoid offline *intermediaries*, but an offline recipient is
  // only discovered at lock time: the upstream HTLC locks must roll back.
  PcnFixture f;
  const Amount a0 = f.net.balance("alice");
  const Amount b0 = f.net.balance("bob");
  f.net.set_offline("dave", true);
  EXPECT_FALSE(f.net.pay("alice", "dave", 70'000));
  EXPECT_EQ(f.net.balance("alice"), a0);
  EXPECT_EQ(f.net.balance("bob"), b0);
  // No HTLC left dangling on any channel.
  for (std::size_t i = 0; i < f.net.channel_count(); ++i)
    EXPECT_EQ(f.net.channel(i).party(PartyId::kA).state().num_htlcs(), 0u);
}

TEST(Pcn, FraudOnARoutedChannelIsStillPunished) {
  PcnFixture f;
  ASSERT_TRUE(f.net.pay("alice", "dave", 200'000));
  // Bob publishes the pre-payment state of the bob-carol channel.
  auto& ch = f.net.channel(1);
  ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_EQ(ch.party(PartyId::kB).outcome(), CloseOutcome::kPunished);
}

// --- UC conformance ---------------------------------------------------------

struct UcFixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  daricch::DaricChannel ch;
  uc::ConformanceChecker checker;

  explicit UcFixture(const std::string& id) : ch(env, make_params(id)), checker(env, ch) {}

  bool update(const StateVec& st) {
    checker.observe_update_begin();
    const bool ok = ch.update(st);
    checker.observe_update_end(ok);
    return ok;
  }
};

TEST(UcConformance, HonestLifecycleSatisfiesF) {
  UcFixture f("uc-1");
  ASSERT_TRUE(f.ch.create());
  f.checker.observe_created();
  ASSERT_TRUE(f.update({400'000, 600'000, {}}));
  ASSERT_TRUE(f.update({450'000, 550'000, {}}));
  ASSERT_TRUE(f.ch.cooperative_close());
  f.env.advance_rounds(5);
  EXPECT_TRUE(f.checker.satisfied())
      << (f.checker.violations().empty() ? "" : f.checker.violations()[0]);
}

TEST(UcConformance, ForceCloseSatisfiesBoundedClosure) {
  UcFixture f("uc-2");
  ASSERT_TRUE(f.ch.create());
  f.checker.observe_created();
  ASSERT_TRUE(f.update({300'000, 700'000, {}}));
  f.ch.party(PartyId::kB).force_close();
  ASSERT_TRUE(f.ch.run_until_closed());
  f.env.advance_rounds(3);
  EXPECT_TRUE(f.checker.satisfied())
      << (f.checker.violations().empty() ? "" : f.checker.violations()[0]);
}

TEST(UcConformance, FraudResolvesViaPunishCase) {
  UcFixture f("uc-3");
  ASSERT_TRUE(f.ch.create());
  f.checker.observe_created();
  ASSERT_TRUE(f.update({300'000, 700'000, {}}));
  ASSERT_TRUE(f.update({200'000, 800'000, {}}));
  f.ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(f.ch.run_until_closed());
  f.env.advance_rounds(3);
  EXPECT_TRUE(f.checker.satisfied())
      << (f.checker.violations().empty() ? "" : f.checker.violations()[0]);
}

class UcAbortSweep : public ::testing::TestWithParam<int> {};

TEST_P(UcAbortSweep, AbortedUpdatesStillSatisfyF) {
  UcFixture f("uc-abort-" + std::to_string(GetParam()));
  ASSERT_TRUE(f.ch.create());
  f.checker.observe_created();
  ASSERT_TRUE(f.update({450'000, 550'000, {}}));
  auto& misbehaving =
      GetParam() % 2 == 1 ? f.ch.party(PartyId::kA) : f.ch.party(PartyId::kB);
  misbehaving.behavior.abort_update_before_msg = GetParam();
  f.checker.observe_update_begin();
  EXPECT_FALSE(f.ch.update({350'000, 650'000, {}}));
  f.checker.observe_update_end(false);
  f.env.advance_rounds(3);
  EXPECT_TRUE(f.checker.satisfied())
      << (f.checker.violations().empty() ? "" : f.checker.violations()[0]);
}

INSTANTIATE_TEST_SUITE_P(AbortPoints, UcAbortSweep, ::testing::Range(1, 7));

// --- Fee handling (Sec. 8) --------------------------------------------------

TEST(FeeHandling, FeeBumpedRevocationConfirms) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  channel::ChannelParams params = make_params("fee-1");
  params.feeable_revocations = true;
  daricch::DaricChannel ch(env, params);
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({400'000, 600'000, {}}));

  // B registers a fee wallet for its punishment transaction.
  const crypto::KeyPair fee_key = crypto::derive_keypair("fee-wallet");
  const tx::OutPoint fee_op =
      env.ledger().mint(10'000, tx::Condition::p2wpkh(fee_key.pk.compressed()));
  ch.party(PartyId::kB).set_fee_source({fee_op, 10'000, fee_key}, 4'000);

  ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_EQ(ch.party(PartyId::kB).outcome(), CloseOutcome::kPunished);

  // The confirmed revocation carries the fee pair: 2 inputs, 2 outputs,
  // and the ledger collected exactly the fee.
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->inputs.size(), 2u);
  EXPECT_EQ(rv->outputs.size(), 2u);
  EXPECT_EQ(rv->outputs[0].cash, 1'000'000);  // full capacity to B
  EXPECT_EQ(rv->outputs[1].cash, 6'000);      // change
  EXPECT_EQ(env.ledger().fees_total(), 4'000);
}

TEST(FeeHandling, AttachFeeRejectsOverdraft) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  tx::Transaction t;
  const crypto::KeyPair k = crypto::derive_keypair("fee-odd");
  EXPECT_THROW(
      daricch::attach_fee(t, {{}, 100, k}, 200, env.scheme()),
      std::invalid_argument);
}

TEST(FeeHandling, FeeSourceRequiresFeeableParams) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("fee-2"));  // not feeable
  ASSERT_TRUE(ch.create());
  const crypto::KeyPair k = crypto::derive_keypair("fee-w2");
  EXPECT_THROW(ch.party(PartyId::kB).set_fee_source({{}, 100, k}, 10), std::logic_error);
}

// --- Channel reset (Sec. 8) --------------------------------------------

TEST(ChannelReset, ResetChainConfirmsOnLedger) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  daricch::DaricChannel ch(env, make_params("reset-1"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({400'000, 600'000, {}}));

  // Parties agree on the reset off-chain...
  daricch::ResetPackage pkg =
      daricch::build_reset(ch.party(PartyId::kA), ch.party(PartyId::kB), ch.params(),
                           {400'000, 600'000, {}});

  // ...and later enforce it: A publishes the latest commit; after T the
  // reset split (instead of a normal split) lands; then the new channel's
  // floating commit binds to it.
  ch.party(PartyId::kA).force_close();
  env.advance_rounds(kDelta + 2);
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  ASSERT_TRUE(commit.has_value());

  // The party's own monitor wants to publish the *normal* split at
  // c + T; in a real reset both parties replace their stored split with
  // the reset split. Post the reset split one round earlier (delay 0) so
  // it wins the race against the monitor's Δ-delayed post.
  const Round c = *env.ledger().confirmation_round(commit->txid());
  while (env.now() < c + ch.params().t_punish) env.advance_round();
  const script::Script commit_script =
      daricch::commit_script(ch.party(PartyId::kA).pub().sp, ch.party(PartyId::kB).pub().sp,
                             ch.party(PartyId::kA).pub().rv, ch.party(PartyId::kB).pub().rv,
                             ch.params().s0 + 1, static_cast<std::uint32_t>(ch.params().t_punish));
  daricch::bind_reset_split(pkg, {commit->txid(), 0}, commit_script);
  env.ledger().post_with_delay(pkg.reset_split, 0);
  env.advance_rounds(2);
  ASSERT_TRUE(env.ledger().is_confirmed(pkg.reset_split.txid()));

  // The reset channel's floating commit binds to the now-known outpoint.
  daricch::bind_new_commit(pkg, {pkg.reset_split.txid(), 0});
  env.ledger().post_with_delay(pkg.new_commit, 0);
  env.advance_rounds(2);
  EXPECT_TRUE(env.ledger().is_confirmed(pkg.new_commit.txid()));
  // State numbering restarted: the new commit's locktime is S0 again.
  EXPECT_EQ(pkg.new_commit.nlocktime, ch.params().s0);
}

// --- Lightning watchtower (Table 1's O(n) tower) ----------------------------

TEST(LightningTower, PunishesRevokedCommit) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  lightning::LightningChannel ch(env, make_params("lnt-1"));
  ASSERT_TRUE(ch.create());
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(ch.update({500'000 - i * 1000, 500'000 + i * 1000, {}}));

  lightning::LightningWatchtower tower(PartyId::kB, {ch.archived_commit(PartyId::kA, 0).inputs[0].prevout},
                                       ch.payout_pk(PartyId::kB));
  for (std::uint32_t s = 0; s < ch.state_number(); ++s)
    tower.add_package(lightning::make_ln_tower_package(ch, PartyId::kB, s));
  env.add_round_hook([&] { tower.on_round(env.ledger()); });

  ch.publish_old_commit(PartyId::kA, 1);
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_TRUE(tower.reacted());
}

TEST(LightningTower, StorageGrowsPerState) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  lightning::LightningChannel ch(env, make_params("lnt-2"));
  ASSERT_TRUE(ch.create());
  lightning::LightningWatchtower tower(PartyId::kB, {ch.archived_commit(PartyId::kA, 0).inputs[0].prevout},
                                       ch.payout_pk(PartyId::kB));
  std::vector<std::size_t> sizes;
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(ch.update({500'000 - i, 500'000 + i, {}}));
    tower.add_package(
        lightning::make_ln_tower_package(ch, PartyId::kB, static_cast<std::uint32_t>(i - 1)));
    sizes.push_back(tower.storage_bytes());
  }
  // Strictly increasing — O(n), unlike the Daric tower.
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(LightningTower, SecretNotRevealedBeforeRevocation) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  lightning::LightningChannel ch(env, make_params("lnt-3"));
  ASSERT_TRUE(ch.create());
  EXPECT_THROW(ch.revealed_secret(PartyId::kA, 0), std::logic_error);  // state 0 not revoked
  ASSERT_TRUE(ch.update({499'000, 501'000, {}}));
  EXPECT_NO_THROW(ch.revealed_secret(PartyId::kA, 0));
}

}  // namespace
}  // namespace daric
