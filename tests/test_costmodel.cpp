// Table 3 reproduction: closure weights and per-update operation counts
// must match the paper's published expressions exactly.
#include <gtest/gtest.h>

#include "src/costmodel/table3.h"

namespace daric::costmodel {
namespace {

// --- Dishonest closure constants (Table 3, m = 0) --------------------------

TEST(Table3Dishonest, ExactWeightsAtMZero) {
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kLightning, 0).weight, 1209);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kGeneralized, 0).weight, 1342);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kFppw, 0).weight, 2045);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kCerberus, 0).weight, 1798);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kOutpost, 0).weight, 2632);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kSleepy, 0).weight, 2172);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kEltoo, 0).weight, 2268);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kDaric, 0).weight, 1239);
}

TEST(Table3Dishonest, SlopesMatchPaper) {
  EXPECT_DOUBLE_EQ(dishonest_weight_formula(Scheme::kLightning).slope, 582.5);
  EXPECT_DOUBLE_EQ(dishonest_weight_formula(Scheme::kEltoo).slope, 696);
  EXPECT_DOUBLE_EQ(dishonest_weight_formula(Scheme::kDaric).slope, 0);
  EXPECT_DOUBLE_EQ(dishonest_weight_formula(Scheme::kGeneralized).slope, 0);
  EXPECT_DOUBLE_EQ(dishonest_weight_formula(Scheme::kFppw).slope, 0);
}

TEST(Table3Dishonest, TxCounts) {
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kLightning, 0).num_txs, 2);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kEltoo, 0).num_txs, 3);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kDaric, 0).num_txs, 2);
  EXPECT_DOUBLE_EQ(dishonest_closure(Scheme::kOutpost, 0).num_txs, 3);
}

// --- Non-collaborative closure ---------------------------------------------

TEST(Table3NonCollab, ExactWeightsAtMZero) {
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kLightning, 0).weight, 724);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kGeneralized, 0).weight, 1432);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kFppw, 0).weight, 1562);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kCerberus, 0).weight, 772);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kOutpost, 0).weight, 3018);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kSleepy, 0).weight, 2558);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kEltoo, 0).weight, 1588);
  EXPECT_DOUBLE_EQ(noncollab_closure(Scheme::kDaric, 0).weight, 1363);
}

TEST(Table3NonCollab, SlopesMatchPaper) {
  EXPECT_DOUBLE_EQ(noncollab_weight_formula(Scheme::kLightning).slope, 793);
  EXPECT_DOUBLE_EQ(noncollab_weight_formula(Scheme::kGeneralized).slope, 696);
  EXPECT_DOUBLE_EQ(noncollab_weight_formula(Scheme::kFppw).slope, 696);
  EXPECT_DOUBLE_EQ(noncollab_weight_formula(Scheme::kEltoo).slope, 696);
  EXPECT_DOUBLE_EQ(noncollab_weight_formula(Scheme::kDaric).slope, 696);
}

// --- Paper's headline comparisons -------------------------------------------

TEST(Table3Claims, DaricCheapestDishonestClosureForAnyHtlcCount) {
  // "Daric (with weight 1239) is more cost effective than other schemes
  //  with m ≥ 1."
  for (int m : {1, 2, 6, 100, 966}) {
    const double daric = dishonest_closure(Scheme::kDaric, m).weight;
    for (Scheme s : kAllSchemes) {
      if (s == Scheme::kDaric) continue;
      const int mm = supports_htlcs(s) ? m : 0;
      EXPECT_LT(daric, dishonest_closure(s, mm).weight) << scheme_name(s) << " m=" << m;
    }
  }
}

TEST(Table3Claims, DaricBeatsLightningNonCollabAboveSixHtlcs) {
  // "In the non-collaborative closure scenario with m ≠ 0, Daric
  //  outperforms ... Lightning channel with m > 6."
  EXPECT_GT(noncollab_closure(Scheme::kDaric, 6).weight,
            noncollab_closure(Scheme::kLightning, 6).weight);
  for (int m : {7, 8, 20, 966}) {
    EXPECT_LT(noncollab_closure(Scheme::kDaric, m).weight,
              noncollab_closure(Scheme::kLightning, m).weight)
        << "m=" << m;
  }
}

TEST(Table3Claims, DaricBeatsGcEltooFppwNonCollabForAllM) {
  for (int m : {0, 1, 5, 100}) {
    const double daric = noncollab_closure(Scheme::kDaric, m).weight;
    EXPECT_LT(daric, noncollab_closure(Scheme::kGeneralized, m).weight);
    EXPECT_LT(daric, noncollab_closure(Scheme::kEltoo, m).weight);
    EXPECT_LT(daric, noncollab_closure(Scheme::kFppw, m).weight);
  }
}

TEST(Table3Claims, LightningAndEltooDishonestCostsGrowWithM) {
  EXPECT_GT(dishonest_closure(Scheme::kLightning, 10).weight,
            dishonest_closure(Scheme::kLightning, 0).weight);
  EXPECT_GT(dishonest_closure(Scheme::kEltoo, 10).weight,
            dishonest_closure(Scheme::kEltoo, 0).weight);
  EXPECT_EQ(dishonest_closure(Scheme::kDaric, 10).weight,
            dishonest_closure(Scheme::kDaric, 0).weight);
}

// --- Operation counts -------------------------------------------------------

TEST(Table3Ops, MatchPaperAtMZero) {
  struct Row {
    Scheme s;
    double sign, verify, exp;
  };
  const Row rows[] = {
      {Scheme::kLightning, 2, 1, 2}, {Scheme::kGeneralized, 3, 2, 1},
      {Scheme::kFppw, 6, 10, 1},     {Scheme::kCerberus, 3, 6, 0},
      {Scheme::kOutpost, 4, 4, 0},   {Scheme::kSleepy, 5, 5, 0},
      {Scheme::kEltoo, 2, 2, 1},     {Scheme::kDaric, 4, 3, 0},
  };
  for (const Row& r : rows) {
    const OpsCount o = update_ops(r.s, 0);
    EXPECT_DOUBLE_EQ(o.sign, r.sign) << scheme_name(r.s);
    EXPECT_DOUBLE_EQ(o.verify, r.verify) << scheme_name(r.s);
    EXPECT_DOUBLE_EQ(o.exp, r.exp) << scheme_name(r.s);
  }
}

TEST(Table3Ops, DaricIndependentOfHtlcCountLightningNot) {
  EXPECT_EQ(update_ops(Scheme::kDaric, 100).sign, update_ops(Scheme::kDaric, 0).sign);
  EXPECT_EQ(update_ops(Scheme::kLightning, 100).sign, 2 + 2 * 100);
  EXPECT_EQ(update_ops(Scheme::kLightning, 100).verify, 1 + 50);
}

// --- Component cross-checks --------------------------------------------

TEST(Components, WeightIdentity) {
  const TxBytes t = daric_commit() + daric_revocation();
  EXPECT_DOUBLE_EQ(t.witness, 535);
  EXPECT_DOUBLE_EQ(t.non_witness, 176);
  EXPECT_DOUBLE_EQ(t.weight(), 1239);
}

TEST(Components, HtlcFreeSchemesRejectNonzeroM) {
  EXPECT_THROW(dishonest_closure(Scheme::kCerberus, 1), std::invalid_argument);
  EXPECT_THROW(noncollab_closure(Scheme::kOutpost, 2), std::invalid_argument);
  EXPECT_THROW(update_ops(Scheme::kSleepy, 3), std::invalid_argument);
}

TEST(Components, FromTableFlagOnlyForOutpostSleepy) {
  for (Scheme s : kAllSchemes) {
    const bool expect = s == Scheme::kOutpost || s == Scheme::kSleepy;
    EXPECT_EQ(dishonest_closure(s, 0).from_table, expect) << scheme_name(s);
  }
}

class Table3MSweep : public ::testing::TestWithParam<int> {};

TEST_P(Table3MSweep, ClosedFormsMatchComponentSums) {
  const int m = GetParam();
  for (Scheme s : kAllSchemes) {
    if (!supports_htlcs(s)) continue;
    EXPECT_DOUBLE_EQ(dishonest_weight_formula(s).at(m), dishonest_closure(s, m).weight)
        << scheme_name(s);
    EXPECT_DOUBLE_EQ(noncollab_weight_formula(s).at(m), noncollab_closure(s, m).weight)
        << scheme_name(s);
  }
}

INSTANTIATE_TEST_SUITE_P(HtlcCounts, Table3MSweep, ::testing::Values(0, 1, 2, 7, 16, 966));

}  // namespace
}  // namespace daric::costmodel
