// Sec. 6 analyses: the eltoo HTLC-delay attack (closed form + executable
// mempool simulation) and the punishment/deterrence thresholds.
#include <gtest/gtest.h>

#include "src/analysis/eltoo_attack.h"
#include "src/analysis/punishment.h"

namespace daric::analysis {
namespace {

// --- 6.1 closed form ---------------------------------------------------

TEST(DelayAttackEconomicsTest, PaperOperatingPoint) {
  const DelayAttackEconomics e = analyze_delay_attack({});
  EXPECT_EQ(e.channels_per_delay_tx, 715);   // "≈ 715 eltoo channels"
  EXPECT_EQ(e.delay_txs_before_expiry, 144); // 3 days / 30 minutes
  EXPECT_EQ(e.fee_per_delay_tx, 100'000);
  EXPECT_EQ(e.total_attack_cost, 144 * 100'000);
  EXPECT_EQ(e.max_revenue, 715 * 100'000);
  EXPECT_TRUE(e.profitable);  // pays 144·A to win up to 715·A
}

TEST(DelayAttackEconomicsTest, CongestionMakesItMoreProfitable) {
  DelayAttackParams p;
  p.fee_market.congestion = 4;  // each delay tx stalls 4x longer
  const DelayAttackEconomics congested = analyze_delay_attack(p);
  const DelayAttackEconomics baseline = analyze_delay_attack({});
  EXPECT_LT(congested.delay_txs_before_expiry, baseline.delay_txs_before_expiry);
  EXPECT_GT(congested.profit, baseline.profit);
}

TEST(DelayAttackEconomicsTest, ShortTimelockBreaksEven) {
  DelayAttackParams p;
  // With a timelock so long that fees exceed the max revenue, the attack
  // turns unprofitable: 716 * 3 blocks = 2148 blocks.
  p.htlc_timelock_blocks = 715 * 3 + 3;
  EXPECT_FALSE(analyze_delay_attack(p).profitable);
}

TEST(DelayAttackEconomicsTest, DaricReactionBoundIsDelta) {
  EXPECT_EQ(daric_reaction_bound(3), 3);
}

// --- 6.1 executable simulation ----------------------------------------

TEST(DelayAttackSim, VictimBlockedPastTimelock) {
  // Scaled-down run: 12-round HTLC timelock, floor-rate delay 3 rounds.
  const DelayAttackSimResult r =
      simulate_delay_attack(/*channels=*/2, /*timelock_rounds=*/12,
                            /*htlc_value=*/5'000, {1.0, 3, 1});
  EXPECT_TRUE(r.victim_blocked_past_timelock);
  EXPECT_GE(r.delay_txs_confirmed, 3);
  EXPECT_GT(r.victim_replacements_rejected, 0);
  EXPECT_GE(r.victim_blocked_rounds, 12);
  EXPECT_EQ(r.attacker_fees_paid, 5'000 * r.delay_txs_confirmed);
}

TEST(DelayAttackSim, SingleChannelAlsoBlocked) {
  const DelayAttackSimResult r =
      simulate_delay_attack(1, 9, 4'000, {1.0, 3, 1});
  EXPECT_TRUE(r.victim_blocked_past_timelock);
}

// --- 6.2 punishment thresholds ------------------------------------------

TEST(Punishment, EltooThresholdAtPaperNumbers) {
  // f ≈ 0.0000021 BTC (210 sat), C_A = 0.04 BTC ⇒ p > ~0.9999.
  PunishmentParams p;
  EXPECT_NEAR(eltoo_p_threshold(p), 0.9999475, 1e-6);
  // With the *average* fee f = 0.000055 BTC: p > ~0.999.
  p.tx_fee = 5'500;
  EXPECT_NEAR(eltoo_p_threshold(p), 0.998625, 1e-6);
}

TEST(Punishment, DaricThresholdIsOneMinusReserve) {
  PunishmentParams p;
  EXPECT_DOUBLE_EQ(daric_p_threshold(p), 0.99);
  p.reserve = 0.05;
  EXPECT_DOUBLE_EQ(daric_p_threshold(p), 0.95);  // flexible deterrence
}

TEST(Punishment, EltooThresholdGrowsWithCapacityDaricDoesNot) {
  PunishmentParams small;
  small.channel_capacity = 1'000'000;
  PunishmentParams large;
  large.channel_capacity = 100'000'000;  // 1 BTC channel
  EXPECT_LT(eltoo_p_threshold(small), eltoo_p_threshold(large));
  EXPECT_DOUBLE_EQ(daric_p_threshold(small), daric_p_threshold(large));
}

TEST(Punishment, DaricThresholdBelowEltooThreshold) {
  // "to discourage attacks, the honest party would require to meet a
  //  higher p in eltoo than in Daric"
  PunishmentParams p;
  EXPECT_LT(daric_p_threshold(p), eltoo_p_threshold(p));
}

TEST(Punishment, EvSignsMatchThresholds) {
  PunishmentParams p;
  const double et = eltoo_p_threshold(p);
  EXPECT_GT(eltoo_attack_ev(p, et - 0.0001), 0);  // below threshold: profitable
  EXPECT_LT(eltoo_attack_ev(p, et + 0.00001), 0); // above: deterred
  const double dt = daric_p_threshold(p);
  EXPECT_GT(daric_attack_ev(p, dt - 0.01), 0);
  EXPECT_LT(daric_attack_ev(p, dt + 0.001), 0);
}

TEST(Punishment, WatchtowerCoverageLowersThresholds) {
  PunishmentParams none;
  PunishmentParams half = none;
  half.watchtower_coverage = 0.5;
  EXPECT_LT(eltoo_p_threshold(half), eltoo_p_threshold(none));
  EXPECT_LT(daric_p_threshold(half), daric_p_threshold(none));
  // Daric with ρ = 1% and 50% coverage: p > 1 - 0.01/0.5 = 0.98.
  EXPECT_DOUBLE_EQ(daric_p_threshold(half), 0.98);
}

TEST(Punishment, FullCoverageDetersUnconditionally) {
  PunishmentParams p;
  p.watchtower_coverage = 1.0;
  EXPECT_DOUBLE_EQ(eltoo_p_threshold(p), 0.0);
  EXPECT_DOUBLE_EQ(daric_p_threshold(p), 0.0);
}

class ReserveSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReserveSweep, DaricDeterrenceIsFlexible) {
  PunishmentParams p;
  p.reserve = GetParam();
  EXPECT_NEAR(daric_p_threshold(p), 1.0 - GetParam(), 1e-12);
  // EV at p slightly above the threshold is negative for every reserve.
  EXPECT_LT(daric_attack_ev(p, 1.0 - GetParam() + 1e-6), 0);
}

INSTANTIATE_TEST_SUITE_P(Reserves, ReserveSweep,
                         ::testing::Values(0.01, 0.02, 0.05, 0.10, 0.25));

}  // namespace
}  // namespace daric::analysis
