// Property-style sweeps: randomized update/fraud scenarios, measured
// on-chain weights vs the Appendix-H cost model, value conservation, and
// operation counting.
#include <gtest/gtest.h>

#include "src/costmodel/table3.h"
#include "src/daric/protocol.h"
#include "src/tx/weight.h"

namespace daric {
namespace {

using channel::StateVec;
using daricch::CloseOutcome;
using daricch::DaricChannel;
using sim::PartyId;

constexpr Round kDelta = 2;
constexpr Round kT = 6;

channel::ChannelParams make_params(const std::string& id, Amount a, Amount b) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = a;
  p.cash_b = b;
  p.t_punish = kT;
  return p;
}

// Deterministic pseudo-random stream from a seed label.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 0x9e3779b97f4a7c15ull + 1) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// --- Randomized fraud scenarios ------------------------------------------

class RandomScenario : public ::testing::TestWithParam<int> {};

TEST_P(RandomScenario, AnyOldStatePublishIsAlwaysPunished) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Amount cap = 100'000;
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("rand-" + std::to_string(GetParam()), 50'000, 50'000));
  ASSERT_TRUE(ch.create());

  const int updates = 2 + static_cast<int>(rng.below(6));
  for (int i = 0; i < updates; ++i) {
    const Amount to_a = 1'000 + static_cast<Amount>(rng.below(98'000));
    ASSERT_TRUE(ch.update({to_a, cap - to_a, {}}));
  }
  const PartyId cheater = rng.below(2) == 0 ? PartyId::kA : PartyId::kB;
  const auto cheat_state = static_cast<std::uint32_t>(rng.below(updates));  // < latest
  ch.publish_old_commit(cheater, cheat_state);
  ASSERT_TRUE(ch.run_until_closed());

  const PartyId victim = other(cheater);
  EXPECT_EQ(ch.party(victim).outcome(), CloseOutcome::kPunished);
  // The victim holds the entire capacity.
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  ASSERT_TRUE(commit.has_value());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->outputs[0].cash, cap);
  EXPECT_EQ(rv->outputs[0].cond, tx::Condition::p2wpkh(ch.party(victim).pub().main));
  // Ledger-wide value conservation.
  EXPECT_EQ(env.ledger().utxos().total_value() + env.ledger().fees_total(),
            env.ledger().minted_total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenario, ::testing::Range(1, 13));

class RandomHonestScenario : public ::testing::TestWithParam<int> {};

TEST_P(RandomHonestScenario, ForceCloseAlwaysDeliversLatestState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Amount cap = 80'000;
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("hon-" + std::to_string(GetParam()), 40'000, 40'000));
  ASSERT_TRUE(ch.create());
  Amount to_a = 40'000;
  const int updates = 1 + static_cast<int>(rng.below(5));
  for (int i = 0; i < updates; ++i) {
    to_a = 1'000 + static_cast<Amount>(rng.below(cap - 2'000));
    ASSERT_TRUE(ch.update({to_a, cap - to_a, {}},
                          rng.below(2) == 0 ? PartyId::kA : PartyId::kB));
  }
  const PartyId closer = rng.below(2) == 0 ? PartyId::kA : PartyId::kB;
  ch.party(closer).force_close();
  ASSERT_TRUE(ch.run_until_closed());
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto split = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->outputs[0].cash, to_a);
  EXPECT_EQ(split->outputs[1].cash, cap - to_a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHonestScenario, ::testing::Range(1, 9));

// --- Measured weights vs Appendix-H cost model ------------------------------

TEST(MeasuredWeights, DaricDishonestClosureMatchesTable3) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("w-dis", 50'000, 50'000));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({30'000, 70'000, {}}));
  ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(ch.run_until_closed());

  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto rv = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  const double measured =
      static_cast<double>(tx::measure(*commit).weight() + tx::measure(*rv).weight());
  const double paper = costmodel::dishonest_closure(costmodel::Scheme::kDaric, 0).weight;
  // Byte-exact up to the witness branch-selector accounting (±2 bytes/tx).
  EXPECT_NEAR(measured, paper, 4.0) << "measured " << measured;
}

TEST(MeasuredWeights, DaricNonCollabClosureMatchesTable3) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("w-nc", 50'000, 50'000));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({30'000, 70'000, {}}));
  ch.party(PartyId::kA).force_close();
  ASSERT_TRUE(ch.run_until_closed());

  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto split = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(split.has_value());
  const double measured =
      static_cast<double>(tx::measure(*commit).weight() + tx::measure(*split).weight());
  const double paper = costmodel::noncollab_closure(costmodel::Scheme::kDaric, 0).weight;
  EXPECT_NEAR(measured, paper, 4.0) << "measured " << measured;
}

class MeasuredHtlcWeights : public ::testing::TestWithParam<int> {};

TEST_P(MeasuredHtlcWeights, DaricCommitPlusSplitTracksFormulaInM) {
  const int m = GetParam();
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("w-m" + std::to_string(m), 40'000,
                                   40'000 + 1'000 * m));
  ASSERT_TRUE(ch.create());
  StateVec st{40'000, 40'000, {}};
  const auto secret = channel::make_htlc_secret("wh");
  for (int i = 0; i < m; ++i)
    st.htlcs.push_back({1'000, secret.payment_hash, i % 2 == 0, 5});
  ASSERT_TRUE(ch.update(st));
  ch.party(PartyId::kB).force_close();
  ASSERT_TRUE(ch.run_until_closed());
  const auto commit = env.ledger().spender_of(ch.funding_outpoint());
  const auto split = env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(split.has_value());
  const double measured =
      static_cast<double>(tx::measure(*commit).weight() + tx::measure(*split).weight());
  // Commit + split part of the non-collab formula: 1363 + 172m (the
  // remaining 524m/m·(Redeem'+Claimback') resolve separately).
  const double paper = 1363.0 + 172.0 * m;
  EXPECT_NEAR(measured, paper, 4.0) << "m=" << m << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(HtlcCounts, MeasuredHtlcWeights, ::testing::Values(0, 1, 3, 8));

// --- Operation counting --------------------------------------------------

TEST(OpCounting, DaricUpdateSignsFourPerParty) {
  crypto::CountingScheme counting(crypto::schnorr_scheme());
  sim::Environment env(kDelta, counting);
  DaricChannel ch(env, make_params("ops", 50'000, 50'000));
  ASSERT_TRUE(ch.create());
  crypto::op_counters().reset();
  ASSERT_TRUE(ch.update({40'000, 60'000, {}}));
  // Both parties together: 2 split + 2 cross-commit + 2 own-commit +
  // 2 revocation signatures = 8, i.e. Table 3's 4 per party. (The engine
  // signs its own commit eagerly where the paper's party defers it to the
  // watchtower handover; the count is the same.)
  EXPECT_EQ(crypto::op_counters().signs.load(), 8u);
  EXPECT_GE(crypto::op_counters().verifies.load(), 6u);  // ≥ 3 per party
}

TEST(OpCounting, DaricOpsIndependentOfHtlcCount) {
  crypto::CountingScheme counting(crypto::schnorr_scheme());
  sim::Environment env(kDelta, counting);
  DaricChannel ch(env, make_params("ops-m", 50'000, 50'000));
  ASSERT_TRUE(ch.create());
  crypto::op_counters().reset();
  ASSERT_TRUE(ch.update({40'000, 60'000, {}}));
  const auto signs_plain = crypto::op_counters().signs.load();

  StateVec st{30'000, 30'000, {}};
  const auto secret = channel::make_htlc_secret("ops-h");
  for (int i = 0; i < 10; ++i) st.htlcs.push_back({4'000, secret.payment_hash, true, 5});
  crypto::op_counters().reset();
  ASSERT_TRUE(ch.update(st));
  EXPECT_EQ(crypto::op_counters().signs.load(), signs_plain);  // Table 3 claim
}

// --- Channel reset (Sec. 8) ---------------------------------------------

TEST(Lifetime, StateNumberGrowsByOnePerUpdate) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  DaricChannel ch(env, make_params("life", 50'000, 50'000));
  ASSERT_TRUE(ch.create());
  for (std::uint32_t i = 1; i <= 30; ++i) {
    ASSERT_TRUE(ch.update({50'000 - static_cast<Amount>(i), 50'000 + static_cast<Amount>(i), {}}));
    ASSERT_EQ(ch.party(PartyId::kA).state_number(), i);
  }
}

}  // namespace
}  // namespace daric
