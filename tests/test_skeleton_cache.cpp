// Byte-exact equivalence of the per-channel template skeleton cache
// (src/daric/skeleton.h) with the from-scratch builders, across state
// numbers, balances and HTLC counts — plus the SighashCache invalidation
// contract the patched skeletons rely on.
#include <gtest/gtest.h>

#include "src/channel/htlc.h"
#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/daric/skeleton.h"
#include "src/tx/serializer.h"
#include "src/tx/sighash.h"

namespace daric {
namespace {

using daricch::TemplateCache;

channel::ChannelParams make_params(std::uint32_t s0 = 0) {
  channel::ChannelParams p;
  p.id = "skel-test";
  p.cash_a = 600'000;
  p.cash_b = 400'000;
  p.t_punish = 9;
  p.s0 = s0;
  return p;
}

daricch::DaricPubKeys pubs(const char* who) {
  return daricch::to_pub(daricch::DaricKeys::derive(who, "skel-test"));
}

tx::OutPoint outpoint(Byte tag, std::uint32_t vout = 0) {
  return {crypto::Sha256::hash(Bytes{tag}), vout};
}

void expect_same_tx(const tx::Transaction& got, const tx::Transaction& want) {
  EXPECT_EQ(tx::serialize_base(got), tx::serialize_base(want));
}

TEST(SkeletonCache, CommitMatchesBuilderAcrossStates) {
  const auto p = make_params(1000);
  const auto a = pubs("A"), b = pubs("B");
  TemplateCache cache(p, a, b);
  const tx::OutPoint op = outpoint(1);
  // Non-monotone sequence: the cache must also patch "backwards".
  for (const std::uint32_t state : {0u, 1u, 2u, 9u, 100u, 3u}) {
    const Amount cash = 1'000'000 + state;
    const daricch::CommitPair& got = cache.commit(op, cash, state);
    const daricch::CommitPair want = gen_commit(op, cash, a, b, state, p);
    expect_same_tx(got.body_a, want.body_a);
    expect_same_tx(got.body_b, want.body_b);
    EXPECT_TRUE(got.script_a == want.script_a) << "state " << state;
    EXPECT_TRUE(got.script_b == want.script_b) << "state " << state;
  }
}

TEST(SkeletonCache, CommitTracksFundingOutpoint) {
  const auto p = make_params();
  const auto a = pubs("A"), b = pubs("B");
  TemplateCache cache(p, a, b);
  cache.commit(outpoint(1), 500, 0);
  const tx::OutPoint op2 = outpoint(2, 3);
  const daricch::CommitPair& got = cache.commit(op2, 700, 0);
  const daricch::CommitPair want = gen_commit(op2, 700, a, b, 0, p);
  expect_same_tx(got.body_a, want.body_a);
  expect_same_tx(got.body_b, want.body_b);
}

TEST(SkeletonCache, SplitMatchesBuilderAcrossBalancesAndHtlcs) {
  const auto p = make_params(7);
  const auto a = pubs("A"), b = pubs("B");
  TemplateCache cache(p, a, b);
  const auto secret = channel::make_htlc_secret("skel-h");

  std::vector<channel::StateVec> states;
  states.push_back({600'000, 400'000, {}});
  states.push_back({1, 999'999, {}});  // balances move, same (empty) HTLC set
  for (const int m : {1, 3, 16}) {
    channel::StateVec st{500'000, 500'000, {}};
    for (int k = 0; k < m; ++k) {
      st.htlcs.push_back({1'000 + k, secret.payment_hash, k % 2 == 0,
                          static_cast<std::uint32_t>(5 + k)});
      st.to_a -= st.htlcs.back().cash;
    }
    states.push_back(st);
  }
  states.push_back({300'000, 700'000, {}});  // HTLC set shrinks back to empty

  std::uint32_t state_number = 0;
  for (const channel::StateVec& st : states) {
    const tx::Transaction& got = cache.split(st, state_number);
    const tx::Transaction want = gen_split(st, state_number, p, a, b);
    expect_same_tx(got, want);
    ++state_number;
  }
}

TEST(SkeletonCache, RevokeMatchesBuilderForBothPayouts) {
  const auto p = make_params(42);
  const auto a = pubs("A"), b = pubs("B");
  TemplateCache cache(p, a, b);
  for (const std::uint32_t revoked : {0u, 1u, 17u, 2u}) {
    const Amount cash = 900'000 + revoked;
    expect_same_tx(cache.revoke(true, cash, revoked),
                   daricch::gen_revoke(a.main, cash, revoked, p));
    expect_same_tx(cache.revoke(false, cash, revoked),
                   daricch::gen_revoke(b.main, cash, revoked, p));
  }
}

// --- SighashCache invalidation contract -------------------------------------

TEST(SighashCacheInvalidate, FreshDigestAfterMutateAndInvalidate) {
  const auto p = make_params();
  const auto a = pubs("A"), b = pubs("B");
  tx::Transaction t = gen_split({600'000, 400'000, {}}, 4, p, a, b);

  tx::SighashCache cache(t);
  const auto flag = script::SighashFlag::kAllAnyPrevOut;
  EXPECT_EQ(cache.digest(0, flag), tx::sighash_digest(t, 0, flag));
  EXPECT_EQ(cache.generation(), 0u);

  // Patch the body the way the template skeletons do, then invalidate: the
  // cache must serve the new digest (debug builds would throw on a stale
  // read; release builds would silently return the old digest without the
  // invalidate call).
  t.nlocktime = 999;
  t.outputs[0].cash -= 1;
  cache.invalidate();
  EXPECT_EQ(cache.generation(), 1u);
  EXPECT_EQ(cache.digest(0, flag), tx::sighash_digest(t, 0, flag));
}

TEST(SighashCacheInvalidate, MutateInvalidateResign) {
  const auto p = make_params();
  const auto a = pubs("A"), b = pubs("B");
  const auto& scheme = crypto::schnorr_scheme();
  const auto kp = crypto::derive_keypair("skel-resign");
  tx::Transaction t = gen_split({600'000, 400'000, {}}, 1, p, a, b);

  tx::SighashCache cache(t);
  const auto flag = script::SighashFlag::kAllAnyPrevOut;
  const Bytes sig1 = tx::sign_input(t, 0, kp, scheme, flag, &cache);

  t.nlocktime = 1234;  // state patch
  cache.invalidate();
  const Bytes sig2 = tx::sign_input(t, 0, kp, scheme, flag, &cache);

  // Both signatures verify against the digest of the body as it was when
  // each was produced — the second one covers the mutated body.
  const auto dec2 = script::decode_wire_sig(sig2, scheme.signature_size());
  ASSERT_TRUE(dec2.has_value());
  EXPECT_TRUE(scheme.verify(kp.pk, tx::sighash_digest(t, 0, flag), dec2->raw));
  const auto dec1 = script::decode_wire_sig(sig1, scheme.signature_size());
  ASSERT_TRUE(dec1.has_value());
  EXPECT_FALSE(scheme.verify(kp.pk, tx::sighash_digest(t, 0, flag), dec1->raw));
}

}  // namespace
}  // namespace daric
