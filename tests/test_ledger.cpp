// Ledger functionality L(Δ, Σ): the five Appendix-C validity rules,
// round/delay behaviour, and the fee-market mempool (RBF).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/crypto/sha256.h"
#include "src/ledger/fee_market.h"
#include "src/ledger/ledger.h"
#include "src/tx/sighash.h"

namespace daric {
namespace {

using ledger::Ledger;
using ledger::TxError;
using script::SighashFlag;

const auto kOwner = crypto::derive_keypair("ledger-test/owner");
const auto kOther = crypto::derive_keypair("ledger-test/other");

tx::Transaction spend_p2wpkh(const tx::OutPoint& op, Amount in_value, Amount out_value,
                             const crypto::KeyPair& key, std::uint32_t nlt = 0) {
  (void)in_value;
  tx::Transaction t;
  t.inputs = {{op}};
  t.nlocktime = nlt;
  t.outputs = {{out_value, tx::Condition::p2wpkh(key.pk.compressed())}};
  const Bytes sig = tx::sign_input(t, 0, key.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].stack = {sig, key.pk.compressed()};
  return t;
}

class LedgerTest : public ::testing::Test {
 protected:
  Ledger ledger_{2, crypto::schnorr_scheme()};
};

TEST_F(LedgerTest, MintCreatesSpendableUtxo) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  EXPECT_TRUE(ledger_.is_unspent(op));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 900, kOwner);
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_TRUE(ledger_.is_confirmed(t.txid()));
  EXPECT_FALSE(ledger_.is_unspent(op));
  EXPECT_EQ(ledger_.fees_total(), 100);
}

TEST_F(LedgerTest, PostHonorsAdversaryDelayBound) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOwner);
  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(t.txid()));
  EXPECT_THROW(ledger_.post_with_delay(t, 3), std::invalid_argument);  // > Δ
}

TEST_F(LedgerTest, Rule1DuplicateTxidRejected) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOwner);
  ledger_.post_with_delay(t, 0);
  ledger_.post_with_delay(t, 0);
  ledger_.advance_rounds(2);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kDuplicateTxid);
}

TEST_F(LedgerTest, Rule2MissingInputRejected) {
  const tx::OutPoint bogus{crypto::Sha256::hash(Bytes{1}), 0};
  const tx::Transaction t = spend_p2wpkh(bogus, 1000, 1000, kOwner);
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kMissingInput);
}

TEST_F(LedgerTest, Rule2BadWitnessRejected) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOther);  // wrong key
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kBadWitness);
}

// Multi-input P2WPKH spends take the deferred batch-verification path
// (schnorr supports batch verify); the verdict must match per-input
// verification for both valid and tampered witnesses.
TEST_F(LedgerTest, MultiInputBatchVerifiedSpendAccepted) {
  std::vector<tx::OutPoint> ops;
  for (int i = 0; i < 4; ++i)
    ops.push_back(ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed())));
  tx::Transaction t;
  for (const auto& op : ops) t.inputs.push_back({op});
  t.outputs = {{4000, tx::Condition::p2wpkh(kOther.pk.compressed())}};
  t.witnesses.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Bytes sig =
        tx::sign_input(t, i, kOwner.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
    t.witnesses[i].stack = {sig, kOwner.pk.compressed()};
  }
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_TRUE(ledger_.is_confirmed(t.txid()));
  for (const auto& op : ops) EXPECT_FALSE(ledger_.is_unspent(op));
}

TEST_F(LedgerTest, MultiInputBatchRejectsOneTamperedSignature) {
  std::vector<tx::OutPoint> ops;
  for (int i = 0; i < 3; ++i)
    ops.push_back(ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed())));
  tx::Transaction t;
  for (const auto& op : ops) t.inputs.push_back({op});
  t.outputs = {{3000, tx::Condition::p2wpkh(kOther.pk.compressed())}};
  t.witnesses.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Bytes sig =
        tx::sign_input(t, i, kOwner.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
    t.witnesses[i].stack = {sig, kOwner.pk.compressed()};
  }
  t.witnesses[1].stack[0][12] ^= 1;  // tamper the middle input's signature
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kBadWitness);
  for (const auto& op : ops) EXPECT_TRUE(ledger_.is_unspent(op));
}

TEST_F(LedgerTest, Rule3ZeroValueOutputRejected) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOwner);
  t.outputs[0].cash = 0;
  // Re-sign after the mutation.
  const Bytes sig = tx::sign_input(t, 0, kOwner.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses[0].stack = {sig, kOwner.pk.compressed()};
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kBadOutputValue);
}

TEST_F(LedgerTest, Rule4ValueInflationRejected) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1001, kOwner);
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kValueNotConserved);
}

TEST_F(LedgerTest, Rule5FutureLocktimeRejected) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOwner, /*nlt=*/100);
  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kLocktimeInFuture);
  // After enough rounds the same transaction becomes valid.
  ledger_.advance_rounds(100);
  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(t.txid()));
}

TEST_F(LedgerTest, DoubleSpendFirstWins) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t1 = spend_p2wpkh(op, 1000, 1000, kOwner);
  tx::Transaction t2 = spend_p2wpkh(op, 1000, 999, kOwner);
  ledger_.post_with_delay(t1, 0);
  ledger_.post_with_delay(t2, 0);
  ledger_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(t1.txid()));
  EXPECT_EQ(ledger_.post_result(t2.txid()), TxError::kMissingInput);
}

TEST_F(LedgerTest, SpenderOfTracksConfirmedSpends) {
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 1000, 1000, kOwner);
  EXPECT_FALSE(ledger_.spender_of(op).has_value());
  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();
  ASSERT_TRUE(ledger_.spender_of(op).has_value());
  EXPECT_EQ(ledger_.spender_of(op)->txid(), t.txid());
}

TEST_F(LedgerTest, ValueConservationInvariant) {
  const tx::OutPoint op = ledger_.mint(5000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction t = spend_p2wpkh(op, 5000, 4500, kOwner);
  ledger_.post(t);
  ledger_.advance_rounds(3);
  EXPECT_EQ(ledger_.utxos().total_value() + ledger_.fees_total(), ledger_.minted_total());
}

TEST_F(LedgerTest, CsvEnforcedViaUtxoAge) {
  // Output requiring 5 rounds of age before spending.
  script::Script s;
  s.num4(5)
      .op(script::Op::OP_CHECKSEQUENCEVERIFY)
      .op(script::Op::OP_DROP)
      .push(kOwner.pk.compressed())
      .op(script::Op::OP_CHECKSIG);
  const tx::OutPoint op = ledger_.mint(1000, tx::Condition::p2wsh(s));

  tx::Transaction t;
  t.inputs = {{op}};
  t.outputs = {{1000, tx::Condition::p2wpkh(kOwner.pk.compressed())}};
  const Bytes sig = tx::sign_input(t, 0, kOwner.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].stack = {sig};
  t.witnesses[0].witness_script = s;

  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();  // age 1 < 5
  EXPECT_EQ(ledger_.post_result(t.txid()), TxError::kBadWitness);
  ledger_.advance_rounds(5);
  ledger_.post_with_delay(t, 0);
  ledger_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(t.txid()));
}

// --- Randomized-schedule properties -------------------------------------

tx::Transaction spend_split(const tx::OutPoint& op, const std::vector<Amount>& outs,
                            const crypto::KeyPair& key, std::uint32_t nlt) {
  tx::Transaction t;
  t.inputs = {{op}};
  t.nlocktime = nlt;
  for (const Amount v : outs)
    t.outputs.push_back({v, tx::Condition::p2wpkh(key.pk.compressed())});
  const Bytes sig = tx::sign_input(t, 0, key.sk, crypto::schnorr_scheme(), SighashFlag::kAll);
  t.witnesses.resize(1);
  t.witnesses[0].stack = {sig, key.pk.compressed()};
  return t;
}

// Under arbitrary interleavings of spends, splits, conflicting double spends
// and adversary delays, minted value is conserved every single round:
// unspent outputs plus collected fees always equal the total ever minted.
TEST(LedgerProperty, ValueConservationUnderRandomSchedules) {
  for (const std::uint32_t seed : {1u, 7u, 42u, 1337u}) {
    std::mt19937 rng(seed);
    const Round delta = 1 + static_cast<Round>(rng() % 3);
    ledger::Ledger ledger(delta, crypto::schnorr_scheme());

    // (outpoint, value) candidates; stale entries double-spend on purpose.
    std::vector<std::pair<tx::OutPoint, Amount>> coins;
    for (int i = 0; i < 6; ++i) {
      const Amount v = 500 + static_cast<Amount>(rng() % 5000);
      coins.emplace_back(ledger.mint(v, tx::Condition::p2wpkh(kOwner.pk.compressed())), v);
    }

    for (int step = 0; step < 60; ++step) {
      const int posts = static_cast<int>(rng() % 3);
      for (int k = 0; k < posts; ++k) {
        const auto [op, value] = coins[rng() % coins.size()];
        const Amount fee = static_cast<Amount>(rng() % (value / 2 + 1));
        std::vector<Amount> outs;
        if (value - fee > 1 && rng() % 2 == 0) {
          const Amount first = 1 + static_cast<Amount>(rng() % (value - fee - 1));
          outs = {first, value - fee - first};
        } else {
          outs = {value - fee};
        }
        const auto nlt = static_cast<std::uint32_t>(std::max<long long>(
            0, ledger.now() + static_cast<long long>(rng() % 7) - 2));
        const tx::Transaction t = spend_split(op, outs, kOwner, nlt);
        ledger.post_with_delay(t, static_cast<Round>(rng() % (delta + 1)));
        for (std::uint32_t i = 0; i < outs.size(); ++i)
          coins.emplace_back(tx::OutPoint{t.txid(), i}, outs[i]);
      }
      ledger.advance_round();
      ASSERT_EQ(ledger.utxos().total_value() + ledger.fees_total(), ledger.minted_total())
          << "seed=" << seed << " round=" << ledger.now();
    }
    ledger.advance_rounds(delta + 1);
    EXPECT_EQ(ledger.utxos().total_value() + ledger.fees_total(), ledger.minted_total());
  }
}

// Rule-5 / Δ-delay validity: across randomized publish schedules nothing
// ever confirms before its nLockTime, everything confirms within the posted
// delay window, and the only rejections are future locktimes.
TEST(LedgerProperty, LocktimeAndDelayBoundsUnderRandomSchedules) {
  struct Posted {
    Hash256 txid;
    Round posted = 0;
    Round tau = 0;
    std::uint32_t nlt = 0;
  };
  for (const std::uint32_t seed : {3u, 11u, 99u, 2024u}) {
    std::mt19937 rng(seed);
    const Round delta = 1 + static_cast<Round>(rng() % 3);
    ledger::Ledger ledger(delta, crypto::schnorr_scheme());
    std::vector<Posted> posted;

    for (int step = 0; step < 40; ++step) {
      if (rng() % 2 == 0) {
        const tx::OutPoint op =
            ledger.mint(1000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
        const auto nlt = static_cast<std::uint32_t>(std::max<long long>(
            0, ledger.now() + static_cast<long long>(rng() % 9) - 2));
        const Round tau = static_cast<Round>(rng() % (delta + 1));
        const tx::Transaction t = spend_split(op, {1000}, kOwner, nlt);
        ledger.post_with_delay(t, tau);
        posted.push_back({t.txid(), ledger.now(), tau, nlt});
      }
      ledger.advance_round();
    }
    ledger.advance_rounds(delta + 1);  // drain the queue

    for (const Posted& p : posted) {
      const auto res = ledger.post_result(p.txid);
      ASSERT_TRUE(res.has_value());
      if (const auto conf = ledger.confirmation_round(p.txid)) {
        EXPECT_GE(*conf, static_cast<Round>(p.nlt)) << "seed=" << seed;
        EXPECT_GE(*conf, p.posted + p.tau) << "seed=" << seed;
        // One round per step ⇒ due posts are picked up immediately.
        EXPECT_LE(*conf, p.posted + std::max<Round>(p.tau, 1)) << "seed=" << seed;
      } else {
        EXPECT_EQ(*res, TxError::kLocktimeInFuture) << "seed=" << seed;
        EXPECT_GT(static_cast<long long>(p.nlt), p.posted + p.tau) << "seed=" << seed;
      }
    }
  }
}

// --- Fee market / mempool ----------------------------------------------

TEST(FeeMarket, InclusionDelayScalesWithFeerate) {
  const ledger::FeeMarketParams params{1.0, 3, 1};
  EXPECT_EQ(ledger::inclusion_delay(params, 1.0), 3);
  EXPECT_EQ(ledger::inclusion_delay(params, 3.0), 1);
  EXPECT_EQ(ledger::inclusion_delay(params, 100.0), 1);
  EXPECT_EQ(ledger::inclusion_delay(params, 0.5), -1);  // below relay floor
}

TEST(FeeMarket, CongestionMultiplies) {
  const ledger::FeeMarketParams params{1.0, 3, 4};
  EXPECT_EQ(ledger::inclusion_delay(params, 1.0), 12);
}

class MempoolTest : public ::testing::Test {
 protected:
  Ledger ledger_{2, crypto::schnorr_scheme()};
  ledger::Mempool mempool_{ledger_, {1.0, 3, 1}};
};

TEST_F(MempoolTest, HighFeeConfirmsFasterThanFloor) {
  const tx::OutPoint op1 = ledger_.mint(100'000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::OutPoint op2 = ledger_.mint(100'000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction fast = spend_p2wpkh(op1, 100'000, 90'000, kOwner);   // huge feerate
  const tx::Transaction slow = spend_p2wpkh(op2, 100'000, 99'800, kOwner);   // ~1 sat/vB
  EXPECT_EQ(mempool_.submit(fast), ledger::MempoolResult::kAccepted);
  EXPECT_EQ(mempool_.submit(slow), ledger::MempoolResult::kAccepted);
  mempool_.advance_round();
  mempool_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(fast.txid()));
  EXPECT_FALSE(ledger_.is_confirmed(slow.txid()));
  mempool_.advance_round();
  mempool_.advance_round();
  EXPECT_TRUE(ledger_.is_confirmed(slow.txid()));
}

TEST_F(MempoolTest, RbfRequiresStrictlyHigherAbsoluteFee) {
  const tx::OutPoint op = ledger_.mint(100'000, tx::Condition::p2wpkh(kOwner.pk.compressed()));
  const tx::Transaction incumbent = spend_p2wpkh(op, 100'000, 50'000, kOwner);  // fee 50k
  EXPECT_EQ(mempool_.submit(incumbent), ledger::MempoolResult::kAccepted);

  const tx::Transaction cheap = spend_p2wpkh(op, 100'000, 60'000, kOwner);  // fee 40k
  EXPECT_EQ(mempool_.submit(cheap), ledger::MempoolResult::kRejectedRbfTooCheap);

  const tx::Transaction rich = spend_p2wpkh(op, 100'000, 40'000, kOwner);  // fee 60k
  EXPECT_EQ(mempool_.submit(rich), ledger::MempoolResult::kReplaced);
  EXPECT_FALSE(mempool_.pending(incumbent.txid()));
  EXPECT_TRUE(mempool_.pending(rich.txid()));
}

TEST_F(MempoolTest, InvalidSpendRejected) {
  const tx::OutPoint bogus{crypto::Sha256::hash(Bytes{9}), 0};
  EXPECT_EQ(mempool_.submit(spend_p2wpkh(bogus, 1, 1, kOwner)),
            ledger::MempoolResult::kRejectedInvalid);
}

}  // namespace
}  // namespace daric
