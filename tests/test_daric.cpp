// End-to-end tests of the Daric protocol engine (Appendix D) on the ledger
// functionality: create, update, both close paths, punishment, bounded
// closure timing, state ordering, storage, and the watchtower.
#include <gtest/gtest.h>

#include "src/daric/protocol.h"
#include "src/daric/watchtower.h"

namespace daric {
namespace {

using channel::ChannelFlag;
using channel::StateVec;
using daricch::CloseOutcome;
using daricch::DaricChannel;
using sim::PartyId;

constexpr Round kDelta = 2;
constexpr Round kT = 6;  // T > Δ

channel::ChannelParams make_params(const std::string& id, Amount a = 60'000,
                                   Amount b = 40'000) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = a;
  p.cash_b = b;
  p.t_punish = kT;
  return p;
}

struct Fixture {
  sim::Environment env{kDelta, crypto::schnorr_scheme()};
  std::unique_ptr<DaricChannel> ch;

  explicit Fixture(const std::string& id, Amount a = 60'000, Amount b = 40'000) {
    ch = std::make_unique<DaricChannel>(env, make_params(id, a, b));
  }
};

TEST(DaricCreate, FundingConfirmsAndStateZeroActive) {
  Fixture f("create-1");
  ASSERT_TRUE(f.ch->create());
  EXPECT_TRUE(f.env.ledger().is_unspent(f.ch->funding_outpoint()));
  for (PartyId p : {PartyId::kA, PartyId::kB}) {
    EXPECT_TRUE(f.ch->party(p).channel_open());
    EXPECT_EQ(f.ch->party(p).state_number(), 0u);
    EXPECT_EQ(f.ch->party(p).state().to_a, 60'000);
    EXPECT_EQ(f.ch->party(p).state().to_b, 40'000);
    EXPECT_EQ(f.ch->party(p).flag(), ChannelFlag::kStable);
  }
}

TEST(DaricCreate, RejectsBadParams) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  channel::ChannelParams p = make_params("bad");
  p.t_punish = kDelta;  // violates T > Δ
  EXPECT_THROW(DaricChannel(env, p), std::invalid_argument);
  p = make_params("bad2");
  p.cash_b = 0;
  EXPECT_THROW(DaricChannel(env, p), std::invalid_argument);
}

TEST(DaricUpdate, AdvancesStateWithoutLedgerInteraction) {
  Fixture f("upd-1");
  ASSERT_TRUE(f.ch->create());
  const std::size_t txs_before = f.env.ledger().accepted().size();
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  ASSERT_TRUE(f.ch->update({30'000, 70'000, {}}));
  // Optimistic update: no on-chain traffic at all.
  EXPECT_EQ(f.env.ledger().accepted().size(), txs_before);
  EXPECT_EQ(f.ch->party(PartyId::kA).state_number(), 2u);
  EXPECT_EQ(f.ch->party(PartyId::kB).state_number(), 2u);
  EXPECT_EQ(f.ch->party(PartyId::kA).state().to_a, 30'000);
}

TEST(DaricUpdate, EitherPartyCanPropose) {
  Fixture f("upd-2");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({55'000, 45'000, {}}, PartyId::kB));
  EXPECT_EQ(f.ch->party(PartyId::kA).state_number(), 1u);
}

TEST(DaricUpdate, RejectsCapacityViolation) {
  Fixture f("upd-3");
  ASSERT_TRUE(f.ch->create());
  EXPECT_THROW(f.ch->update({90'000, 20'000, {}}), std::invalid_argument);
}

TEST(DaricUpdate, EnforcesReserve) {
  sim::Environment env(kDelta, crypto::schnorr_scheme());
  channel::ChannelParams p = make_params("reserve");
  p.min_balance_fraction = 0.01;
  DaricChannel ch(env, p);
  ASSERT_TRUE(ch.create());
  EXPECT_THROW(ch.update({100, 99'900, {}}), std::invalid_argument);  // < 1%
  EXPECT_TRUE(ch.update({1'000, 99'000, {}}));                       // exactly 1%
}

TEST(DaricUpdate, SupportsHtlcOutputs) {
  Fixture f("upd-htlc");
  ASSERT_TRUE(f.ch->create());
  const auto secret = channel::make_htlc_secret("pay-1");
  StateVec st{50'000, 45'000, {{5'000, secret.payment_hash, true, 4}}};
  ASSERT_TRUE(f.ch->update(st));
  EXPECT_EQ(f.ch->party(PartyId::kA).state().num_htlcs(), 1u);
}

TEST(DaricClose, CooperativeSplitsLatestState) {
  Fixture f("close-1");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({20'000, 80'000, {}}));
  ASSERT_TRUE(f.ch->cooperative_close());
  for (PartyId p : {PartyId::kA, PartyId::kB})
    EXPECT_EQ(f.ch->party(p).outcome(), CloseOutcome::kCooperative);
  // The funding output is spent by a transaction paying 20k/80k.
  const auto spender = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(spender.has_value());
  EXPECT_EQ(spender->outputs[0].cash, 20'000);
  EXPECT_EQ(spender->outputs[1].cash, 80'000);
}

TEST(DaricClose, NonCollaborativeDeliversLatestState) {
  Fixture f("close-2");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({25'000, 75'000, {}}));
  f.ch->party(PartyId::kA).force_close();
  ASSERT_TRUE(f.ch->run_until_closed());
  EXPECT_EQ(f.ch->party(PartyId::kA).outcome(), CloseOutcome::kNonCollaborative);
  EXPECT_EQ(f.ch->party(PartyId::kB).outcome(), CloseOutcome::kNonCollaborative);
  // The split transaction carries the latest state.
  const auto spender = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(spender.has_value());
  const auto split = f.env.ledger().spender_of({spender->txid(), 0});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->outputs[0].cash, 25'000);
  EXPECT_EQ(split->outputs[1].cash, 75'000);
}

TEST(DaricClose, BoundedClosureWithinTPlusDelta) {
  Fixture f("close-3");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({25'000, 75'000, {}}));
  const Round start = f.env.now();
  f.ch->party(PartyId::kB).force_close();
  ASSERT_TRUE(f.ch->run_until_closed());
  const Round closed = *f.ch->party(PartyId::kB).closed_round();
  // Commit within Δ, split T rounds later, confirmed within another Δ,
  // plus monitor-round slack.
  EXPECT_LE(closed - start, kDelta + kT + kDelta + 2);
}

TEST(DaricClose, RefusedCooperationFallsBackToForceClose) {
  Fixture f("close-4");
  ASSERT_TRUE(f.ch->create());
  f.ch->party(PartyId::kB).behavior.refuse_close = true;
  EXPECT_FALSE(f.ch->cooperative_close(PartyId::kA));
  EXPECT_EQ(f.ch->party(PartyId::kA).outcome(), CloseOutcome::kNonCollaborative);
}

// --- Punishment ---------------------------------------------------------

class DaricPunishSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DaricPunishSweep, EveryRevokedStateIsPunished) {
  const std::uint32_t cheat_state = GetParam();
  Fixture f("punish-" + std::to_string(cheat_state));
  ASSERT_TRUE(f.ch->create());
  const int updates = 4;
  for (int i = 1; i <= updates; ++i)
    ASSERT_TRUE(f.ch->update({60'000 - i * 5'000, 40'000 + i * 5'000, {}}));

  // A publishes a revoked commit; B must take all 100k.
  f.ch->publish_old_commit(PartyId::kA, cheat_state);
  ASSERT_TRUE(f.ch->run_until_closed());
  EXPECT_EQ(f.ch->party(PartyId::kB).outcome(), CloseOutcome::kPunished);
  // B owns the full capacity on-chain now.
  const auto commit = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(commit.has_value());
  const auto rv = f.env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->outputs.size(), 1u);
  EXPECT_EQ(rv->outputs[0].cash, 100'000);
  EXPECT_EQ(rv->outputs[0].cond,
            tx::Condition::p2wpkh(f.ch->party(PartyId::kB).pub().main));
}

INSTANTIATE_TEST_SUITE_P(AllRevokedStates, DaricPunishSweep, ::testing::Values(0u, 1u, 2u, 3u));

TEST(DaricPunish, BPublishingOldStateIsPunishedByA) {
  Fixture f("punish-b");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({80'000, 20'000, {}}));
  ASSERT_TRUE(f.ch->update({90'000, 10'000, {}}));
  f.ch->publish_old_commit(PartyId::kB, 1);
  ASSERT_TRUE(f.ch->run_until_closed());
  EXPECT_EQ(f.ch->party(PartyId::kA).outcome(), CloseOutcome::kPunished);
}

TEST(DaricPunish, PunishmentLandsWithinDelta) {
  Fixture f("punish-fast");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  f.ch->publish_old_commit(PartyId::kA, 0);
  // Wait for the stale commit to confirm.
  Round commit_conf = -1;
  for (int i = 0; i < 10 && commit_conf < 0; ++i) {
    f.env.advance_round();
    if (const auto sp = f.env.ledger().spender_of(f.ch->funding_outpoint())) {
      commit_conf = *f.env.ledger().confirmation_round(sp->txid());
    }
  }
  ASSERT_GE(commit_conf, 0);
  ASSERT_TRUE(f.ch->run_until_closed());
  // Revocation confirmed within Δ plus monitor-round slack.
  EXPECT_LE(*f.ch->party(PartyId::kB).closed_round() - commit_conf, kDelta + 2);
}

TEST(DaricPunish, LatestCommitIsNotPunishable) {
  // If B publishes the *latest* commit, A must not punish; the channel
  // closes non-collaboratively with the latest split.
  Fixture f("punish-latest");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  f.ch->publish_old_commit(PartyId::kB, 1);  // state 1 == latest
  ASSERT_TRUE(f.ch->run_until_closed());
  EXPECT_EQ(f.ch->party(PartyId::kA).outcome(), CloseOutcome::kNonCollaborative);
  EXPECT_EQ(f.ch->party(PartyId::kB).outcome(), CloseOutcome::kNonCollaborative);
}

TEST(DaricPunish, StateOrderingBlocksOldSplitOnNewCommit) {
  // A split with nLT = S0+1 cannot spend a commit whose CLTV is S0+2:
  // the ledger's script check rejects it even after the CSV delay.
  Fixture f("ordering");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  ASSERT_TRUE(f.ch->update({10'000, 90'000, {}}));

  f.ch->party(PartyId::kB).force_close();
  f.env.advance_rounds(kDelta + 1);
  const auto commit = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(commit.has_value());

  tx::Transaction old_split;
  old_split.nlocktime = 1;
  old_split.inputs = {{{commit->txid(), 0}}};
  old_split.outputs = {{50'000, tx::Condition::p2wpkh(f.ch->party(PartyId::kA).pub().main)},
                       {50'000, tx::Condition::p2wpkh(f.ch->party(PartyId::kB).pub().main)}};
  // (Witness content is irrelevant: CLTV fails before signature checks.)
  old_split.witnesses.resize(1);
  old_split.witnesses[0].stack = {Bytes{}, Bytes{}, Bytes{}, Bytes{}};
  // Post while the commit output is still unspent (before B's split lands):
  // the CLTV (S0+2 > nLT 1) must reject it at the script level.
  f.env.ledger().post_with_delay(old_split, 0);
  f.env.advance_round();
  EXPECT_EQ(f.env.ledger().post_result(old_split.txid()), ledger::TxError::kBadWitness);
}

// --- Update aborts (consensus on update) ----------------------------------

class DaricAbortSweep : public ::testing::TestWithParam<int> {};

TEST_P(DaricAbortSweep, AbortAtAnyMessageForceCloses) {
  const int msg = GetParam();
  Fixture f("abort-" + std::to_string(msg));
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));

  // Odd messages are sent by the proposer (A), even ones by B.
  if (msg % 2 == 1) {
    f.ch->party(PartyId::kA).behavior.abort_update_before_msg = msg;
  } else {
    f.ch->party(PartyId::kB).behavior.abort_update_before_msg = msg;
  }
  EXPECT_FALSE(f.ch->update({40'000, 60'000, {}}, PartyId::kA));

  // Both parties end closed, with no money lost.
  EXPECT_FALSE(f.ch->party(PartyId::kA).channel_open());
  EXPECT_FALSE(f.ch->party(PartyId::kB).channel_open());
  const auto spender = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(spender.has_value());
  const auto split = f.env.ledger().spender_of({spender->txid(), 0});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->total_output_value(), 100'000);
  // The enforced state is either the old state (50/50) or the new (40/60):
  const Amount a_share = split->outputs[0].cash;
  EXPECT_TRUE(a_share == 50'000 || a_share == 40'000) << a_share;
}

INSTANTIATE_TEST_SUITE_P(AllAbortPoints, DaricAbortSweep, ::testing::Range(1, 7));

// --- Storage ---------------------------------------------------------------

TEST(DaricStorage, ConstantInNumberOfUpdates) {
  Fixture f("storage");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  const std::size_t after_one = f.ch->party(PartyId::kA).storage_bytes();
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(f.ch->update({50'000 - i * 100, 50'000 + i * 100, {}}));
  EXPECT_EQ(f.ch->party(PartyId::kA).storage_bytes(), after_one);
  EXPECT_EQ(f.ch->party(PartyId::kB).storage_bytes(), after_one);
}

// --- Watchtower -----------------------------------------------------------

TEST(DaricWatchtowerTest, PunishesWhilePartyOffline) {
  Fixture f("tower-1");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  ASSERT_TRUE(f.ch->update({45'000, 55'000, {}}));

  daricch::DaricWatchtower tower(f.ch->params(), PartyId::kB, f.ch->funding_outpoint(),
                                 f.ch->party(PartyId::kA).pub(), f.ch->party(PartyId::kB).pub());
  tower.update_package(daricch::make_watchtower_package(f.ch->party(PartyId::kB)));
  f.env.add_round_hook([&] { tower.on_round(f.env.ledger()); });

  f.ch->publish_old_commit(PartyId::kA, 0);
  f.ch->run_until_closed();
  EXPECT_TRUE(tower.reacted());
  // All channel funds ended at B's payout key.
  const auto commit = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(commit.has_value());
  const auto rv = f.env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->outputs[0].cond, tx::Condition::p2wpkh(f.ch->party(PartyId::kB).pub().main));
}

TEST(DaricWatchtowerTest, StorageConstantAcrossUpdates) {
  Fixture f("tower-2");
  ASSERT_TRUE(f.ch->create());
  daricch::DaricWatchtower tower(f.ch->params(), PartyId::kB, f.ch->funding_outpoint(),
                                 f.ch->party(PartyId::kA).pub(), f.ch->party(PartyId::kB).pub());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  tower.update_package(daricch::make_watchtower_package(f.ch->party(PartyId::kB)));
  const std::size_t first = tower.storage_bytes();
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(f.ch->update({50'000 - i * 10, 50'000 + i * 10, {}}));
    tower.update_package(daricch::make_watchtower_package(f.ch->party(PartyId::kB)));
  }
  EXPECT_EQ(tower.storage_bytes(), first);
}

TEST(DaricWatchtowerTest, IgnoresLatestCommit) {
  Fixture f("tower-3");
  ASSERT_TRUE(f.ch->create());
  ASSERT_TRUE(f.ch->update({50'000, 50'000, {}}));
  daricch::DaricWatchtower tower(f.ch->params(), PartyId::kB, f.ch->funding_outpoint(),
                                 f.ch->party(PartyId::kA).pub(), f.ch->party(PartyId::kB).pub());
  tower.update_package(daricch::make_watchtower_package(f.ch->party(PartyId::kB)));
  f.env.add_round_hook([&] { tower.on_round(f.env.ledger()); });
  f.ch->party(PartyId::kA).force_close();  // latest state: not fraud
  ASSERT_TRUE(f.ch->run_until_closed());
  EXPECT_FALSE(tower.reacted());
  EXPECT_EQ(f.ch->party(PartyId::kB).outcome(), CloseOutcome::kNonCollaborative);
}

// --- HTLC resolution after close -------------------------------------------

TEST(DaricHtlc, RedeemAndClaimbackAfterNonCollabClose) {
  Fixture f("htlc-close");
  ASSERT_TRUE(f.ch->create());
  const auto s1 = channel::make_htlc_secret("h1");
  const auto s2 = channel::make_htlc_secret("h2");
  StateVec st{40'000, 44'000,
              {{9'000, s1.payment_hash, true, 3},     // A pays B
               {7'000, s2.payment_hash, false, 3}}};  // B pays A
  ASSERT_TRUE(f.ch->update(st));
  f.ch->party(PartyId::kA).force_close();
  ASSERT_TRUE(f.ch->run_until_closed());

  const auto commit = f.env.ledger().spender_of(f.ch->funding_outpoint());
  ASSERT_TRUE(commit.has_value());
  const auto split = f.env.ledger().spender_of({commit->txid(), 0});
  ASSERT_TRUE(split.has_value());
  ASSERT_EQ(split->outputs.size(), 4u);

  const auto& a = f.ch->party(PartyId::kA);
  const auto& b = f.ch->party(PartyId::kB);
  // B redeems HTLC 0 with the preimage.
  const tx::Transaction redeem =
      daricch::build_htlc_redeem(*split, 0, st, b, a.pub(), b.pub(), s1.preimage);
  f.env.ledger().post(redeem);
  // B, the payer of HTLC 1, claws it back after its timeout.
  f.env.advance_rounds(4);
  const tx::Transaction back =
      daricch::build_htlc_claimback(*split, 1, st, b, a.pub(), b.pub());
  f.env.ledger().post(back);
  f.env.advance_rounds(kDelta + 1);
  EXPECT_TRUE(f.env.ledger().is_confirmed(redeem.txid()));
  EXPECT_TRUE(f.env.ledger().is_confirmed(back.txid()));
}

// --- Any-signature-scheme instantiation ------------------------------------

TEST(DaricEcdsa, FullLifecycleOverEcdsa) {
  sim::Environment env(kDelta, crypto::ecdsa_scheme());
  DaricChannel ch(env, make_params("ecdsa-ch"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({50'000, 50'000, {}}));
  ch.publish_old_commit(PartyId::kA, 0);
  ASSERT_TRUE(ch.run_until_closed());
  EXPECT_EQ(ch.party(PartyId::kB).outcome(), CloseOutcome::kPunished);
}

}  // namespace
}  // namespace daric
