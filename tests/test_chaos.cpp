// Fault-injection harness: schedule round-trips, chaos drills under the
// deterministic injector, retry/duplicate robustness of the engines, and
// the Theorem-1 watchtower-downtime boundary (safe at T − Δ, demonstrable
// funds loss one round beyond).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/crypto/sig_scheme.h"
#include "src/daric/protocol.h"
#include "src/sim/faults/chaos.h"
#include "src/sim/faults/drill.h"
#include "src/sim/faults/rng.h"
#include "src/sim/faults/schedule.h"

#ifndef DARIC_SCHEDULE_DIR
#define DARIC_SCHEDULE_DIR "tests/schedules"
#endif

namespace daric {
namespace {

using namespace sim::faults;
using sim::PartyId;

std::string read_file(const std::string& name) {
  std::ifstream in(std::string(DARIC_SCHEDULE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing schedule " << name;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- Schedule serialization ----------------------------------------------

TEST(FaultSchedule, TextRoundTripIsByteExact) {
  for (std::uint64_t seed : {1ull, 7ull, 46ull, 99ull, 1234567ull}) {
    const FaultSchedule s = generate_schedule(seed);
    const std::string text = to_text(s);
    const FaultSchedule back = parse_schedule(text);
    EXPECT_TRUE(back == s) << "seed " << seed;
    EXPECT_EQ(to_text(back), text) << "seed " << seed;
  }
}

TEST(FaultSchedule, GenerationIsDeterministic) {
  EXPECT_TRUE(generate_schedule(42) == generate_schedule(42));
  EXPECT_FALSE(generate_schedule(42) == generate_schedule(43));
}

TEST(FaultSchedule, GeneratedSchedulesRespectLiveness) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FaultSchedule s = generate_schedule(seed);
    const Round bound = s.t_punish - s.delta;
    for (const DowntimeWindow& w : s.downtime) EXPECT_LE(w.length, bound);
    if (s.cheat.enabled) {
      EXPECT_LE(s.cheat.victim_offline, bound);
      EXPECT_FALSE(s.cheat.expect_loss);
      EXPECT_LT(s.cheat.state, s.updates);
    }
    EXPECT_TRUE(s.crashes.empty() || !s.cheat.enabled);
  }
}

TEST(FaultSchedule, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_schedule(""), std::runtime_error);
  EXPECT_THROW(parse_schedule("daric-fault-schedule v1\n"), std::runtime_error);  // no end
  EXPECT_THROW(parse_schedule("daric-fault-schedule v1\nbogus 1\nend\n"),
               std::runtime_error);
  EXPECT_THROW(parse_schedule("daric-fault-schedule v1\nmsg 3 explode\nend\n"),
               std::runtime_error);
  EXPECT_THROW(parse_schedule("daric-fault-schedule v1\nseed x\nend\n"), std::runtime_error);
  EXPECT_THROW(parse_schedule("daric-fault-schedule v1\nend\nseed 1\n"), std::runtime_error);
}

TEST(FaultSchedule, MixIsOrderIndependent) {
  EXPECT_EQ(mix(5, 10), mix(5, 10));
  EXPECT_NE(mix(5, 10), mix(5, 11));
  EXPECT_NE(mix(5, 10), mix(6, 10));
}

// --- Drill determinism and replay ----------------------------------------

TEST(ChaosDrill, ReplayIsDeterministic) {
  const FaultSchedule s = generate_schedule(46);
  const DrillReport r1 = run_drill(Protocol::kDaric, s);
  const DrillReport r2 = run_drill(Protocol::kDaric, s);
  EXPECT_EQ(r1.ok, r2.ok);
  EXPECT_EQ(r1.updates_done, r2.updates_done);
  EXPECT_EQ(r1.detail, r2.detail);
  EXPECT_EQ(r1.msg_total, r2.msg_total);
  EXPECT_EQ(r1.msg_dropped, r2.msg_dropped);
}

TEST(ChaosDrill, SmallSweepHoldsInvariantsOnAllProtocols) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const FaultSchedule s = generate_schedule(seed);
    for (Protocol p : {Protocol::kDaric, Protocol::kLightning, Protocol::kGeneralized,
                       Protocol::kEltoo}) {
      const DrillReport r = run_drill(p, s);
      EXPECT_TRUE(r.ok) << protocol_name(p) << " seed " << seed << ": " << r.detail;
      EXPECT_TRUE(r.conservation_ok) << protocol_name(p) << " seed " << seed;
      EXPECT_FALSE(r.funds_lost) << protocol_name(p) << " seed " << seed;
    }
  }
}

// --- Committed regression schedules --------------------------------------

TEST(ChaosRegression, GcAbortScheduleClosesSafelyEverywhere) {
  const std::string text = read_file("gc-abort-regression.sched");
  const FaultSchedule s = parse_schedule(text);
  EXPECT_EQ(to_text(s), text) << "committed schedule must be canonical";
  for (Protocol p : {Protocol::kDaric, Protocol::kLightning, Protocol::kGeneralized,
                     Protocol::kEltoo}) {
    const DrillReport r = run_drill(p, s);
    EXPECT_TRUE(r.ok) << protocol_name(p) << ": " << r.detail;
  }
}

TEST(ChaosRegression, OfflineExactlyAtBoundStillPunishes) {
  const std::string text = read_file("boundary-safe.sched");
  const FaultSchedule s = parse_schedule(text);
  EXPECT_EQ(to_text(s), text);
  ASSERT_TRUE(s.cheat.enabled);
  EXPECT_EQ(s.cheat.victim_offline, s.t_punish - s.delta);
  const DrillReport r = run_drill(Protocol::kDaric, s);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.punished);
  EXPECT_FALSE(r.funds_lost);
}

TEST(ChaosRegression, OfflineBeyondBoundDemonstrablyLosesFunds) {
  const std::string text = read_file("funds-loss-beyond-bound.sched");
  const FaultSchedule s = parse_schedule(text);
  EXPECT_EQ(to_text(s), text);
  ASSERT_TRUE(s.cheat.enabled);
  ASSERT_TRUE(s.cheat.expect_loss);
  EXPECT_EQ(s.cheat.victim_offline, s.t_punish - s.delta + 1);
  const DrillReport r = run_drill(Protocol::kDaric, s);
  EXPECT_TRUE(r.ok) << r.detail;  // ok here MEANS the loss materialized
  EXPECT_TRUE(r.funds_lost);
  EXPECT_FALSE(r.punished);
  EXPECT_TRUE(r.conservation_ok);  // stolen, not conjured: no value created
}

// --- The full boundary scan (Theorem 1) ----------------------------------

TEST(DowntimeBoundary, SafeUpToExactlyTMinusDelta) {
  const Round t_punish = 8, delta = 2;
  for (Round d = 0; d <= t_punish - delta; ++d) {
    const BoundaryReport r = run_downtime_boundary(d, t_punish, delta);
    EXPECT_TRUE(r.punished) << "offline " << d;
    EXPECT_FALSE(r.funds_lost) << "offline " << d;
    EXPECT_TRUE(r.conservation_ok) << "offline " << d;
  }
}

TEST(DowntimeBoundary, FailsOneRoundBeyond) {
  const Round t_punish = 8, delta = 2;
  const BoundaryReport r = run_downtime_boundary(t_punish - delta + 1, t_punish, delta);
  EXPECT_FALSE(r.punished);
  EXPECT_TRUE(r.funds_lost);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(DowntimeBoundary, HoldsForOtherTimelockChoices) {
  for (const auto& [t, d] : {std::pair<Round, Round>{6, 1}, {10, 3}}) {
    const BoundaryReport safe = run_downtime_boundary(t - d, t, d);
    EXPECT_TRUE(safe.punished) << "T=" << t << " delta=" << d;
    const BoundaryReport lost = run_downtime_boundary(t - d + 1, t, d);
    EXPECT_TRUE(lost.funds_lost) << "T=" << t << " delta=" << d;
  }
}

// --- Engine robustness: duplicates and retries ----------------------------

// An injector that drops the first `n` transmit attempts of a run, then
// delivers; exercises the senders' retry budget end to end.
class DropFirstN : public sim::FaultInjector {
 public:
  explicit DropFirstN(int n) : remaining_(n) {}
  sim::MessageAction on_message(Round, PartyId, const std::string&) override {
    if (remaining_ > 0) {
      --remaining_;
      return {sim::MessageFate::kDrop, 0};
    }
    return {};
  }
  Round post_delay(Round, Round delta) override { return delta; }

 private:
  int remaining_;
};

// Duplicates every message: every mutation the engines apply per delivered
// copy must be idempotent.
class DuplicateAll : public sim::FaultInjector {
 public:
  sim::MessageAction on_message(Round, PartyId, const std::string&) override {
    return {sim::MessageFate::kDuplicate, 0};
  }
  Round post_delay(Round, Round delta) override { return delta; }
};

channel::ChannelParams chaos_params(const std::string& id) {
  channel::ChannelParams p;
  p.id = id;
  p.cash_a = 60'000;
  p.cash_b = 40'000;
  p.t_punish = 8;
  return p;
}

TEST(EngineRobustness, DaricSurvivesEveryMessageDuplicated) {
  sim::Environment env(2, crypto::schnorr_scheme());
  DuplicateAll inj;
  env.set_fault_injector(&inj);
  daricch::DaricChannel ch(env, chaos_params("dup-all"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({50'000, 50'000, {}}));
  ASSERT_TRUE(ch.update({30'000, 70'000, {}}));
  EXPECT_EQ(ch.party(PartyId::kA).state_number(), 2u);
  EXPECT_TRUE(ch.cooperative_close());
  EXPECT_EQ(ch.party(PartyId::kA).outcome(), daricch::CloseOutcome::kCooperative);
}

TEST(EngineRobustness, DaricRetriesThroughTransientDrops) {
  // Two drops per message survive the 3-attempt budget; the update must
  // still complete, just slower.
  class DropTwoOfThree : public sim::FaultInjector {
   public:
    sim::MessageAction on_message(Round, PartyId, const std::string&) override {
      return {(count_++ % 3 < 2) ? sim::MessageFate::kDrop : sim::MessageFate::kDeliver, 0};
    }
    Round post_delay(Round, Round delta) override { return delta; }

   private:
    int count_ = 0;
  };
  sim::Environment env(2, crypto::schnorr_scheme());
  DropTwoOfThree inj;
  env.set_fault_injector(&inj);
  daricch::DaricChannel ch(env, chaos_params("drop-2of3"));
  ASSERT_TRUE(ch.create());
  ASSERT_TRUE(ch.update({45'000, 55'000, {}}));
  EXPECT_EQ(ch.party(PartyId::kB).state_number(), 1u);
}

TEST(EngineRobustness, DaricAbortsToForceCloseWhenLinkDies) {
  sim::Environment env(2, crypto::schnorr_scheme());
  DropFirstN inj(1000);  // the link never comes back
  env.set_fault_injector(&inj);
  daricch::DaricChannel ch(env, chaos_params("link-dead"));
  // Create never completes — and no funds were committed.
  EXPECT_FALSE(ch.create());
  EXPECT_FALSE(ch.party(PartyId::kA).channel_open());
}

TEST(EngineRobustness, DaricForceClosesOnMidUpdateSilence) {
  sim::Environment env(2, crypto::schnorr_scheme());
  // Deliver the whole create handshake, then kill the link mid-update.
  class DieAfter : public sim::FaultInjector {
   public:
    explicit DieAfter(int n) : left_(n) {}
    sim::MessageAction on_message(Round, PartyId, const std::string&) override {
      if (left_ > 0) {
        --left_;
        return {};
      }
      return {sim::MessageFate::kDrop, 0};
    }
    Round post_delay(Round, Round delta) override { return delta; }

   private:
    int left_;
  };
  DieAfter inj(5);  // create's messages get through, update's do not
  env.set_fault_injector(&inj);
  daricch::DaricChannel ch(env, chaos_params("mid-update"));
  ASSERT_TRUE(ch.create());
  EXPECT_FALSE(ch.update({50'000, 50'000, {}}));
  EXPECT_FALSE(ch.party(PartyId::kA).channel_open());
  // Non-collaborative close at a both-signed state; conservation intact.
  EXPECT_EQ(ch.party(PartyId::kA).outcome(), daricch::CloseOutcome::kNonCollaborative);
  EXPECT_EQ(env.ledger().utxos().total_value() + env.ledger().fees_total(),
            env.ledger().minted_total());
}

}  // namespace
}  // namespace daric
