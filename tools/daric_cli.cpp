// daric_cli — scenario runner for the Daric library.
//
//   daric_cli lifecycle [--updates N] [--delta D] [--t T] [--scheme ecdsa]
//   daric_cli punish    [--updates N] [--cheat-state K] [...]
//   daric_cli abort     [--abort-msg 1..6] [...]
//   daric_cli attack    [--channels N] [--timelock R] [--htlc A]
//   daric_cli table3    [--m M]
//
// Exit status is 0 when the scenario's expected outcome holds.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "src/analysis/eltoo_attack.h"
#include "src/costmodel/table3.h"
#include "src/daric/protocol.h"

namespace {

using namespace daric;  // NOLINT
using sim::PartyId;

struct Options {
  std::string scenario;
  long updates = 4;
  long cheat_state = 0;
  long abort_msg = 3;
  long delta = 2;
  long t_punish = 6;
  long channels = 2;
  long timelock = 12;
  long htlc = 5'000;
  long m = 0;
  std::string scheme = "schnorr";
};

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.scenario = argv[1];
  const std::map<std::string, long*> longs = {
      {"--updates", &opt.updates},   {"--cheat-state", &opt.cheat_state},
      {"--abort-msg", &opt.abort_msg}, {"--delta", &opt.delta},
      {"--t", &opt.t_punish},        {"--channels", &opt.channels},
      {"--timelock", &opt.timelock}, {"--htlc", &opt.htlc},
      {"--m", &opt.m},
  };
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--scheme") {
      opt.scheme = argv[i + 1];
      continue;
    }
    const auto it = longs.find(key);
    if (it == longs.end()) {
      std::fprintf(stderr, "unknown option: %s\n", key.c_str());
      return false;
    }
    *it->second = std::strtol(argv[i + 1], nullptr, 10);
  }
  return true;
}

const crypto::SignatureScheme& scheme_of(const Options& opt) {
  if (opt.scheme == "ecdsa") return crypto::ecdsa_scheme();
  return crypto::schnorr_scheme();
}

channel::ChannelParams params_of(const Options& opt) {
  channel::ChannelParams p;
  p.id = "cli";
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = opt.t_punish;
  return p;
}

int run_lifecycle(const Options& opt) {
  sim::Environment env(opt.delta, scheme_of(opt));
  daricch::DaricChannel ch(env, params_of(opt));
  if (!ch.create()) return 1;
  for (long i = 1; i <= opt.updates; ++i) {
    ch.update({500'000 - i * 1'000, 500'000 + i * 1'000, {}});
    std::printf("update %ld -> state %u (A=%lld B=%lld), storage %zu B\n", i,
                ch.party(PartyId::kA).state_number(),
                static_cast<long long>(ch.party(PartyId::kA).state().to_a),
                static_cast<long long>(ch.party(PartyId::kA).state().to_b),
                ch.party(PartyId::kA).storage_bytes());
  }
  ch.cooperative_close();
  std::printf("closed: %s\n",
              daricch::close_outcome_name(ch.party(PartyId::kA).outcome()));
  return ch.party(PartyId::kA).outcome() == daricch::CloseOutcome::kCooperative ? 0 : 1;
}

int run_punish(const Options& opt) {
  sim::Environment env(opt.delta, scheme_of(opt));
  daricch::DaricChannel ch(env, params_of(opt));
  if (!ch.create()) return 1;
  for (long i = 1; i <= opt.updates; ++i)
    ch.update({500'000 - i * 1'000, 500'000 + i * 1'000, {}});
  std::printf("A publishes revoked commit of state %ld (latest is %u)\n", opt.cheat_state,
              ch.party(PartyId::kA).state_number());
  const Round start = env.now();
  ch.publish_old_commit(PartyId::kA, static_cast<std::uint32_t>(opt.cheat_state));
  ch.run_until_closed();
  std::printf("B's outcome: %s after %lld rounds\n",
              daricch::close_outcome_name(ch.party(PartyId::kB).outcome()),
              static_cast<long long>(*ch.party(PartyId::kB).closed_round() - start));
  return ch.party(PartyId::kB).outcome() == daricch::CloseOutcome::kPunished ? 0 : 1;
}

int run_abort(const Options& opt) {
  sim::Environment env(opt.delta, scheme_of(opt));
  daricch::DaricChannel ch(env, params_of(opt));
  if (!ch.create()) return 1;
  ch.update({450'000, 550'000, {}});
  auto& silent =
      opt.abort_msg % 2 == 1 ? ch.party(PartyId::kA) : ch.party(PartyId::kB);
  silent.behavior.abort_update_before_msg = static_cast<int>(opt.abort_msg);
  std::printf("%s goes silent before update message %ld...\n",
              sim::party_name(silent.id()), opt.abort_msg);
  const bool updated = ch.update({350'000, 650'000, {}});
  std::printf("update %s; A closed=%d B closed=%d\n", updated ? "completed?!" : "aborted",
              !ch.party(PartyId::kA).channel_open(), !ch.party(PartyId::kB).channel_open());
  return !updated && !ch.party(PartyId::kA).channel_open() ? 0 : 1;
}

int run_attack(const Options& opt) {
  const auto r = analysis::simulate_delay_attack(
      static_cast<int>(opt.channels), opt.timelock, opt.htlc, {1.0, 3, 1});
  std::printf("delay txs %d, victim rejections %d, blocked %lld rounds, past timelock: %s\n",
              r.delay_txs_confirmed, r.victim_replacements_rejected,
              static_cast<long long>(r.victim_blocked_rounds),
              r.victim_blocked_past_timelock ? "yes" : "no");
  const auto eco = analysis::analyze_delay_attack({});
  std::printf("paper-scale economics: %d channels/tx, %d delay txs, profit %lld sat\n",
              eco.channels_per_delay_tx, eco.delay_txs_before_expiry,
              static_cast<long long>(eco.profit));
  return r.victim_blocked_past_timelock ? 0 : 1;
}

int run_table3(const Options& opt) {
  costmodel::print_table3(std::cout, static_cast<int>(opt.m));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: daric_cli <lifecycle|punish|abort|attack|table3> [options]\n"
                 "  --updates N --cheat-state K --abort-msg 1..6 --delta D --t T\n"
                 "  --channels N --timelock R --htlc A --m M --scheme schnorr|ecdsa\n");
    return 2;
  }
  if (opt.scenario == "lifecycle") return run_lifecycle(opt);
  if (opt.scenario == "punish") return run_punish(opt);
  if (opt.scenario == "abort") return run_abort(opt);
  if (opt.scenario == "attack") return run_attack(opt);
  if (opt.scenario == "table3") return run_table3(opt);
  std::fprintf(stderr, "unknown scenario: %s\n", opt.scenario.c_str());
  return 2;
}
