#!/usr/bin/env python3
"""Validate observability artifacts emitted by daric_trace / daric_chaos.

Checks are structural, not semantic: the goal is to catch a sink whose
output format drifted (bad JSON, missing keys, non-monotone ordering)
before a human tries to load it in Perfetto or a notebook.

  validate_trace.py --jsonl FILE [--require-kind K]...   JSONL event stream
  validate_trace.py --chrome FILE                        Chrome trace_event
  validate_trace.py --metrics FILE                       registry snapshot
  validate_trace.py --prom FILE                          Prometheus exposition
  validate_trace.py --analyzer FILE                      daric_analyze --json report

With --analyzer, --theorem1-engine NAME additionally cross-checks the
static Theorem-1 bound against the traced punishment timeline: the gap
between the force_close and punish events in the --jsonl stream must not
exceed the engine's statically proven theorem1_bound.

Any number of the checks may be combined in one invocation; exit is
non-zero on the first failed check.
"""
import argparse
import json
import sys

EVENT_KINDS = {
    "round_advance", "msg_send", "msg_deliver", "msg_drop", "msg_retry",
    "tx_post", "tx_confirm", "tx_reject", "channel_state",
    "htlc_lock", "htlc_settle", "htlc_rollback",
    "punish", "force_close", "fault_inject",
    "payment_begin", "payment_settle", "payment_abort",
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_jsonl(path, require_kinds):
    seen_kinds = set()
    last_seq = -1
    last_round = None
    n = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                e = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: not valid JSON ({err})")
            for key in ("seq", "round", "kind", "engine", "attrs"):
                if key not in e:
                    fail(f"{path}:{lineno}: missing key '{key}'")
            if e["kind"] not in EVENT_KINDS:
                fail(f"{path}:{lineno}: unknown kind '{e['kind']}'")
            if e["seq"] <= last_seq:
                fail(f"{path}:{lineno}: seq {e['seq']} not strictly increasing "
                     f"(previous {last_seq})")
            if last_round is not None and e["round"] < last_round:
                fail(f"{path}:{lineno}: round {e['round']} went backwards "
                     f"(previous {last_round})")
            last_seq = e["seq"]
            last_round = e["round"]
            seen_kinds.add(e["kind"])
            n += 1
    if n == 0:
        fail(f"{path}: no events")
    for k in require_kinds:
        if k not in seen_kinds:
            fail(f"{path}: required kind '{k}' never emitted "
                 f"(saw: {', '.join(sorted(seen_kinds))})")
    print(f"validate_trace: {path}: {n} events ok "
          f"({len(seen_kinds)} kinds, seq/round monotone)")


def check_chrome(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON ({err})")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    lanes = set()
    instants = 0
    for i, e in enumerate(events):
        for key in ("ph", "pid", "tid"):
            if key not in e:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        if e["ph"] == "M":
            continue  # metadata (thread_name) has no ts
        for key in ("ts", "name"):
            if key not in e:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        lanes.add((e["pid"], e["tid"]))
        instants += 1
    if instants == 0:
        fail(f"{path}: only metadata events, no trace content")
    print(f"validate_trace: {path}: {instants} trace events ok "
          f"({len(lanes)} lanes)")


def check_metrics(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON ({err})")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing '{section}' object")
    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: counter '{name}' not a non-negative integer")
    for name, h in doc["histograms"].items():
        for key in ("bounds", "counts", "count", "sum", "min", "max"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"{path}: histogram '{name}': counts must have "
                 f"len(bounds)+1 entries (overflow bucket)")
        if sum(h["counts"]) != h["count"]:
            fail(f"{path}: histogram '{name}': counts sum {sum(h['counts'])} "
                 f"!= count {h['count']}")
        if any(b2 <= b1 for b1, b2 in zip(h["bounds"], h["bounds"][1:])):
            fail(f"{path}: histogram '{name}': bounds not strictly increasing")
        if h["count"] > 0:
            qs = h.get("quantiles")
            if not isinstance(qs, dict):
                fail(f"{path}: histogram '{name}': non-empty but no 'quantiles'")
            for key in ("p50", "p90", "p99", "p999"):
                if not isinstance(qs.get(key), int):
                    fail(f"{path}: histogram '{name}': quantiles.{key} missing")
            ordered = [qs["p50"], qs["p90"], qs["p99"], qs["p999"]]
            if ordered != sorted(ordered):
                fail(f"{path}: histogram '{name}': quantiles not monotone "
                     f"(p50<=p90<=p99<=p999): {ordered}")
            # Quantiles are bucket upper bounds: >= min, and at most one
            # relative-error step (1/32) above the true max.
            if qs["p50"] < h["min"]:
                fail(f"{path}: histogram '{name}': p50 {qs['p50']} below min")
            if qs["p999"] > h["max"] * 33 // 32 + 1:
                fail(f"{path}: histogram '{name}': p999 {qs['p999']} exceeds "
                     f"max {h['max']} beyond the relative-error bound")
    print(f"validate_trace: {path}: metrics snapshot ok "
          f"({len(doc['counters'])} counters, {len(doc['histograms'])} histograms)")


PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


def check_prom(path):
    """Lint the Prometheus text exposition format (what expose_text emits):
    every sample family is preceded by a # TYPE line, names are legal,
    histogram bucket counts are cumulative and the +Inf bucket == _count."""
    import re
    types = {}          # family -> counter|gauge|histogram
    samples = []        # (name, labels-dict, value)
    line_re = re.compile(
        rf"^({PROM_NAME})(?:\{{([^}}]*)\}})? (-?[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?)$")
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = re.match(rf"^# TYPE ({PROM_NAME}) (counter|gauge|histogram)$",
                             line)
                if m is None:
                    if line.startswith("# TYPE"):
                        fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                    continue  # HELP/comment lines are fine
                if m.group(1) in types:
                    fail(f"{path}:{lineno}: duplicate TYPE for '{m.group(1)}'")
                types[m.group(1)] = m.group(2)
                continue
            m = line_re.match(line)
            if m is None:
                fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
            name, labels_raw, value = m.group(1), m.group(2), m.group(3)
            labels = {}
            if labels_raw:
                for pair in labels_raw.split(","):
                    lm = re.match(rf'^({PROM_NAME})="([^"]*)"$', pair)
                    if lm is None:
                        fail(f"{path}:{lineno}: bad label pair {pair!r}")
                    labels[lm.group(1)] = lm.group(2)
            family = re.sub(r"_(bucket|sum|count)$", "", name)
            if name not in types and family not in types:
                fail(f"{path}:{lineno}: sample '{name}' has no preceding "
                     f"# TYPE line")
            samples.append((name, labels, float(value)))
    if not samples:
        fail(f"{path}: no samples")
    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    for family, kind in types.items():
        if kind != "histogram":
            if family not in by_name:
                fail(f"{path}: TYPE '{family}' declared but no sample emitted")
            continue
        buckets = by_name.get(family + "_bucket", [])
        if not buckets:
            fail(f"{path}: histogram '{family}' has no _bucket samples")
        if any("le" not in labels for labels, _ in buckets):
            fail(f"{path}: histogram '{family}' bucket without an le label")
        if buckets[-1][0].get("le") != "+Inf":
            fail(f"{path}: histogram '{family}' last bucket must be le=\"+Inf\"")
        counts = [v for _, v in buckets]
        if counts != sorted(counts):
            fail(f"{path}: histogram '{family}' bucket counts not cumulative")
        for suffix in ("_sum", "_count"):
            if family + suffix not in by_name:
                fail(f"{path}: histogram '{family}' missing {family}{suffix}")
        if by_name[family + "_count"][0][1] != counts[-1]:
            fail(f"{path}: histogram '{family}': +Inf bucket "
                 f"{counts[-1]} != _count {by_name[family + '_count'][0][1]}")
    print(f"validate_trace: {path}: prometheus exposition ok "
          f"({len(types)} families, {len(samples)} samples)")


def check_analyzer(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON ({err})")
    params = doc.get("params")
    if not isinstance(params, dict):
        fail(f"{path}: missing 'params' object")
    for key in ("delta", "t_punish", "max_updates"):
        if not isinstance(params.get(key), int):
            fail(f"{path}: params.{key} not an integer")
    engines = doc.get("engines")
    if not isinstance(engines, list) or not engines:
        fail(f"{path}: 'engines' missing or empty")
    for i, e in enumerate(engines):
        for key in ("engine", "templates", "stale_commits", "races",
                    "races_won", "theorem1_bound", "bound_limit"):
            if key not in e:
                fail(f"{path}: engines[{i}] missing '{key}'")
        for key in ("templates", "stale_commits", "races", "races_won",
                    "theorem1_bound", "bound_limit"):
            if not isinstance(e[key], int):
                fail(f"{path}: engines[{i}].{key} not an integer")
        if not isinstance(e.get("punish_reachable"), bool):
            fail(f"{path}: engines[{i}].punish_reachable not a bool")
        name = e["engine"]
        if e["stale_commits"] > 0 and not e["punish_reachable"]:
            fail(f"{path}: {name}: stale commits exist but punish unreachable")
        if e["punish_reachable"] and e["stale_commits"] > 0:
            if e["theorem1_bound"] < 0:
                fail(f"{path}: {name}: punish reachable but no bound computed")
            if e["theorem1_bound"] > e["bound_limit"]:
                fail(f"{path}: {name}: theorem1_bound {e['theorem1_bound']} "
                     f"exceeds limit {e['bound_limit']}")
        if e["races_won"] != e["races"]:
            fail(f"{path}: {name}: only {e['races_won']}/{e['races']} races won")
    auth = doc.get("auth")
    if not isinstance(auth, list):
        fail(f"{path}: 'auth' missing (authorization section)")
    known = {"P", "Q", "Tower", "Adversary", "Anyone"}
    for i, a in enumerate(auth):
        if not isinstance(a.get("engine"), str):
            fail(f"{path}: auth[{i}].engine not a string")
        for key in ("now", "edges"):
            if not isinstance(a.get(key), int):
                fail(f"{path}: auth[{i}].{key} not an integer")
        for section in ("spenders", "latest_paths"):
            rows = a.get(section)
            if not isinstance(rows, list):
                fail(f"{path}: auth[{i}].{section} missing")
            for j, row in enumerate(rows):
                ps = row.get("principals")
                if not isinstance(ps, list) or not set(ps) <= known:
                    fail(f"{path}: auth[{i}].{section}[{j}].principals invalid: {ps}")
        for j, lp in enumerate(a["latest_paths"]):
            if not isinstance(lp.get("covered"), bool):
                fail(f"{path}: auth[{i}].latest_paths[{j}].covered not a bool")
            if not lp["covered"] and lp["principals"]:
                fail(f"{path}: auth[{i}].latest_paths[{j}]: uncovered latest-state "
                     f"path satisfiable by {lp['principals']}")
    if not isinstance(doc.get("findings"), list):
        fail(f"{path}: 'findings' missing")
    for i, fnd in enumerate(doc["findings"]):
        if "principals" in fnd and not isinstance(fnd["principals"], str):
            fail(f"{path}: findings[{i}].principals not a string")
    if doc.get("errors", 0) != 0:
        fail(f"{path}: analyzer reported {doc['errors']} errors")
    print(f"validate_trace: {path}: analyzer report ok "
          f"({len(engines)} engines, bounds within limits, "
          f"{len(auth)} auth reports)")
    return doc


def traced_punish_gap(path):
    """Rounds from the first force_close event to the first later punish."""
    force_round = punish_round = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            e = json.loads(line)
            if e["kind"] == "force_close" and force_round is None:
                force_round = e["round"]
            if (e["kind"] == "punish" and punish_round is None
                    and force_round is not None):
                punish_round = e["round"]
    if force_round is None or punish_round is None:
        fail(f"{path}: no force_close/punish pair to measure the punish gap")
    return punish_round - force_round


def check_theorem1(analyzer_doc, analyzer_path, engine, jsonl_paths):
    entry = next((e for e in analyzer_doc["engines"] if e["engine"] == engine),
                 None)
    if entry is None:
        fail(f"{analyzer_path}: no engine '{engine}' in analyzer report")
    if entry["theorem1_bound"] < 0:
        fail(f"{analyzer_path}: {engine}: no static bound to cross-check")
    if not jsonl_paths:
        fail("--theorem1-engine needs at least one --jsonl trace")
    for p in jsonl_paths:
        gap = traced_punish_gap(p)
        if gap > entry["theorem1_bound"]:
            fail(f"{p}: traced punish gap {gap} exceeds static "
                 f"theorem1_bound {entry['theorem1_bound']} for {engine}")
        print(f"validate_trace: {p}: traced punish gap {gap} <= static "
              f"bound {entry['theorem1_bound']} ({engine}) ok")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jsonl", action="append", default=[])
    ap.add_argument("--chrome", action="append", default=[])
    ap.add_argument("--metrics", action="append", default=[])
    ap.add_argument("--prom", action="append", default=[])
    ap.add_argument("--analyzer", action="append", default=[])
    ap.add_argument("--require-kind", action="append", default=[],
                    help="kind that must appear in every --jsonl file")
    ap.add_argument("--theorem1-engine", default=None,
                    help="cross-check this engine's static bound against "
                         "the traced punish gap in the --jsonl files")
    args = ap.parse_args()
    if not (args.jsonl or args.chrome or args.metrics or args.prom
            or args.analyzer):
        ap.error("nothing to validate")
    if args.theorem1_engine and not args.analyzer:
        ap.error("--theorem1-engine requires --analyzer")
    for k in args.require_kind:
        if k not in EVENT_KINDS:
            fail(f"--require-kind '{k}' is not a known event kind")
    for p in args.jsonl:
        check_jsonl(p, args.require_kind)
    for p in args.chrome:
        check_chrome(p)
    for p in args.metrics:
        check_metrics(p)
    for p in args.prom:
        check_prom(p)
    for p in args.analyzer:
        doc = check_analyzer(p)
        if args.theorem1_engine:
            check_theorem1(doc, p, args.theorem1_engine, args.jsonl)
    print("validate_trace: all checks passed")


if __name__ == "__main__":
    main()
