#!/usr/bin/env python3
"""Secret-hygiene lint for src/crypto.

Flags comparison patterns on secret material that leak timing information:

  * ``memcmp``/``strcmp``/``strncmp`` anywhere in crypto sources — these
    short-circuit on the first differing byte; use ``crypto::ct_equal``.
  * ``==`` / ``!=`` where an operand is a secret-named identifier
    (``sk``, ``secret``, ``seckey``, ``priv``, ``nonce``, ``witness``,
    ``shared_key`` ...), including early-exit forms such as
    ``if (sk != expected) return``.
  * variable-time zero tests on secrets: ``sk.is_zero()`` and friends.

A finding is suppressed by a ``// lint: ct-ok <reason>`` comment on the
same line or the line directly above — the reason is mandatory, so every
allowlisted compare documents why it is safe (public data, spec-mandated
rejection sampling, ...).

Verification-side code that is variable-time *by design* (wNAF/Strauss
scalar multiplication, batch verification — all inputs public) is exempted
as a block between ``// vartime: begin <reason>`` and ``// vartime: end``
markers instead of annotating every line. Blocks nest; an ``end`` without a
``begin`` or a ``begin`` left open at end-of-file is itself a finding, so a
stray marker cannot silently disable the lint for the rest of a file.

Usage:  lint_secrets.py [paths...]        (default: src/crypto)
Exit:   0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SECRET_NAME = re.compile(
    r"\b(sk|x|seckey|secret\w*|priv\w*|nonce\w*|witness\w*|shared_key|"
    r"session_key|mac\w*)\b",
    re.IGNORECASE,
)

MEMCMP = re.compile(r"\b(memcmp|strcmp|strncmp|bcmp)\s*\(")
COMPARE = re.compile(r"[^=!<>]==[^=]|!=")
IS_ZERO = re.compile(r"\b(\w+)(?:\.\w+\(\))*\.is_zero\s*\(")
ALLOW = re.compile(r"//\s*lint:\s*ct-ok\b\s*(\S.*)?$")
VARTIME_BEGIN = re.compile(r"//\s*vartime:\s*begin\b")
VARTIME_END = re.compile(r"//\s*vartime:\s*end\b")

# `x` alone is too generic to flag in comparisons; it only counts for the
# dedicated is_zero check where rfc6979 names the secret key `x`.
COMPARE_SECRET = re.compile(
    r"\b(sk|seckey|secret\w*|priv\w*|nonce\w*|witness\w*|shared_key|"
    r"session_key)\b",
    re.IGNORECASE,
)


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def allowlisted(lines: list[str], idx: int) -> bool:
    if ALLOW.search(lines[idx]):
        return True
    return idx > 0 and ALLOW.search(lines[idx - 1]) is not None


def lint_file(path: Path) -> list[tuple[Path, int, str]]:
    findings: list[tuple[Path, int, str]] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    vartime_depth = 0
    for i, raw in enumerate(lines):
        if VARTIME_BEGIN.search(raw):
            vartime_depth += 1
            continue
        if VARTIME_END.search(raw):
            if vartime_depth == 0:
                findings.append(
                    (path, i + 1, "'// vartime: end' without matching begin"))
            else:
                vartime_depth -= 1
            continue
        if vartime_depth > 0:
            continue

        code = strip_comments_and_strings(raw)
        if not code.strip():
            continue

        if MEMCMP.search(code) and not allowlisted(lines, i):
            findings.append(
                (path, i + 1,
                 "byte-compare with early exit on potential secret material; "
                 "use crypto::ct_equal")
            )
            continue

        if COMPARE.search(code) and COMPARE_SECRET.search(code) \
                and not allowlisted(lines, i):
            findings.append(
                (path, i + 1,
                 "variable-time ==/!= on secret-named operand; "
                 "use crypto::ct_equal (or annotate '// lint: ct-ok <why>')")
            )
            continue

        m = IS_ZERO.search(code)
        if m and SECRET_NAME.fullmatch(m.group(1)) and not allowlisted(lines, i):
            findings.append(
                (path, i + 1,
                 f"variable-time zero test on secret '{m.group(1)}'; "
                 "use crypto::ct_is_zero")
            )
    if vartime_depth > 0:
        findings.append(
            (path, len(lines),
             f"{vartime_depth} '// vartime: begin' block(s) left open at "
             "end of file"))
    return findings


def main(argv: list[str]) -> int:
    repo = Path(__file__).resolve().parent.parent
    targets = [Path(a) for a in argv[1:]] or [repo / "src" / "crypto"]

    files: list[Path] = []
    for t in targets:
        if t.is_dir():
            files += sorted(p for p in t.rglob("*") if p.suffix in {".h", ".cpp", ".cc"})
        elif t.is_file():
            files.append(t)
        else:
            print(f"error: no such path: {t}", file=sys.stderr)
            return 2

    findings: list[tuple[Path, int, str]] = []
    for f in files:
        findings += lint_file(f)

    for path, line, msg in findings:
        try:
            rel = path.resolve().relative_to(repo)
        except ValueError:
            rel = path
        print(f"{rel}:{line}: {msg}")

    if findings:
        print(f"lint_secrets: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"lint_secrets: OK ({len(files)} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
