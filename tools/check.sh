#!/usr/bin/env bash
# Full verification harness: plain tier-1 suite, the same suite under
# ASan+UBSan, a bounded model-check run, the secret-hygiene lint, and —
# when the binary is installed — clang-tidy over the library sources.
#
# Usage: tools/check.sh [--fast|--bench|--chaos|--analyze|--tsan]
#   --fast    skip the sanitizer rebuild (plain tests + model check + lint)
#   --bench   build Release, run the crypto + update microbenches, and write
#             BENCH_crypto.json / BENCH_update_microbench.json at the repo root
#   --chaos   fixed-seed 200-schedule fault-injection sweep (Daric + all
#             baselines) plus the downtime-boundary scan and the committed
#             regression schedules, under ASan+UBSan
#   --analyze run only the static script/transaction analyzer gate
#   --tsan    build with ThreadSanitizer and run the tier-1 suite under it
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BENCH=0
CHAOS=0
ANALYZE=0
TSAN=0
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--bench" ]] && BENCH=1
[[ "${1:-}" == "--chaos" ]] && CHAOS=1
[[ "${1:-}" == "--analyze" ]] && ANALYZE=1
[[ "${1:-}" == "--tsan" ]] && TSAN=1

step() { printf '\n=== %s ===\n' "$*"; }

if [[ "$ANALYZE" == 1 ]]; then
  step "static script/transaction analyzer"
  cmake -B build -S . >/dev/null
  cmake --build build -j --target daric_analyze >/dev/null
  ./build/tools/daric_analyze
  echo; echo "check.sh --analyze: all templates sound"
  exit 0
fi

if [[ "$TSAN" == 1 ]]; then
  step "TSan build + tier-1 tests"
  cmake -B build-tsan -S . -DDARIC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j >/dev/null
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"
  echo; echo "check.sh --tsan: OK"
  exit 0
fi

if [[ "$BENCH" == 1 ]]; then
  step "Release build for benchmarks"
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j --target bench_crypto bench_update_microbench >/dev/null

  step "bench_crypto -> BENCH_crypto.json"
  ./build-release/bench/bench_crypto \
    --benchmark_out=build-release/bench_crypto_raw.json \
    --benchmark_out_format=json
  python3 tools/bench_to_json.py --name crypto \
    --in build-release/bench_crypto_raw.json --out BENCH_crypto.json \
    --ratio schnorr_verify_speedup_vs_naive_ladder=BM_SchnorrVerifyNaiveLadder/BM_SchnorrVerify \
    --ratio mul_var_point_speedup_vs_naive_ladder=BM_MulVarPointNaiveLadder/BM_MulVarPointWnaf

  step "bench_update_microbench -> BENCH_update_microbench.json"
  ./build-release/bench/bench_update_microbench \
    --benchmark_out=build-release/bench_update_raw.json \
    --benchmark_out_format=json
  python3 tools/bench_to_json.py --name update_microbench \
    --in build-release/bench_update_raw.json --out BENCH_update_microbench.json

  echo; echo "check.sh --bench: BENCH files written"
  exit 0
fi

if [[ "$CHAOS" == 1 ]]; then
  step "ASan+UBSan build (chaos driver)"
  cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j --target daric_chaos >/dev/null

  step "fixed-seed 200-schedule sweep, all protocols"
  ./build-asan/tools/daric_chaos --sweep 200 --seed 1

  step "watchtower-downtime boundary scan (Theorem 1)"
  ./build-asan/tools/daric_chaos --boundary

  step "committed regression schedules"
  for sched in tests/schedules/*.sched; do
    echo "replay $sched"
    ./build-asan/tools/daric_chaos --replay "$sched" --protocol daric
  done

  echo; echo "check.sh --chaos: all sweeps clean"
  exit 0
fi

step "plain build + tier-1 tests"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

step "static script/transaction analyzer (all engines)"
./build/tools/daric_analyze

step "bounded model check (default safe config)"
./build/tools/daric_modelcheck

step "bounded model check (broken watchtower must fail)"
if ./build/tools/daric_modelcheck --break=watchtower --quiet; then
  echo "ERROR: disabling the watchtowers should trip balance security" >&2
  exit 1
fi
echo "counterexample found, as expected"

step "secret-hygiene lint (src/crypto)"
python3 tools/lint_secrets.py

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (src/)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cpp' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [[ "$FAST" == 1 ]]; then
  echo; echo "check.sh --fast: OK (sanitizer pass skipped)"
  exit 0
fi

step "ASan+UBSan build + tier-1 tests"
cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

step "bounded model check under sanitizers"
./build-asan/tools/daric_modelcheck --updates 2 --horizon 16

echo; echo "check.sh: all gates passed"
