#!/usr/bin/env bash
# Full verification harness: plain tier-1 suite, the same suite under
# ASan+UBSan, a bounded model-check run, the secret-hygiene lint, and —
# when the binary is installed — clang-tidy over the library sources.
#
# Usage: tools/check.sh [--fast]
#   --fast   skip the sanitizer rebuild (plain tests + model check + lint)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n=== %s ===\n' "$*"; }

step "plain build + tier-1 tests"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

step "bounded model check (default safe config)"
./build/tools/daric_modelcheck

step "bounded model check (broken watchtower must fail)"
if ./build/tools/daric_modelcheck --break=watchtower --quiet; then
  echo "ERROR: disabling the watchtowers should trip balance security" >&2
  exit 1
fi
echo "counterexample found, as expected"

step "secret-hygiene lint (src/crypto)"
python3 tools/lint_secrets.py

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (src/)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cpp' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [[ "$FAST" == 1 ]]; then
  echo; echo "check.sh --fast: OK (sanitizer pass skipped)"
  exit 0
fi

step "ASan+UBSan build + tier-1 tests"
cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

step "bounded model check under sanitizers"
./build-asan/tools/daric_modelcheck --updates 2 --horizon 16

echo; echo "check.sh: all gates passed"
