#!/usr/bin/env bash
# Full verification harness: plain tier-1 suite, the same suite under
# ASan+UBSan, a bounded model-check run, the secret-hygiene lint, and —
# when the binary is installed — clang-tidy over the library sources.
#
# Usage: tools/check.sh [--fast|--bench|--chaos|--durable|--analyze|--tsan|--trace|--obs|--tidy]
#   --fast    skip the sanitizer rebuild (plain tests + model check + lint)
#   --bench   build Release, run the crypto + update microbenches, write
#             BENCH_crypto.json / BENCH_update_microbench.json at the repo
#             root, and regenerate BENCH_trace_overhead.json (disabled-tracer
#             cost vs the previously committed update microbench)
#   --chaos   fixed-seed 200-schedule fault-injection sweep (Daric + all
#             baselines) plus the downtime-boundary scan and the committed
#             regression schedules, under ASan+UBSan
#   --durable crash-replay gate under ASan+UBSan: 200 schedules that kill a
#             party at a message boundary (with torn/garbage log tails) and
#             recover it from the durable store, plus the store unit tests
#   --analyze run only the static script/transaction analyzer gate
#   --tidy    run only clang-tidy, and FAIL if the binary is missing
#             (the default flow skips it with a note unless
#             DARIC_REQUIRE_TIDY=1 makes the missing binary fatal there too)
#   --tsan    build with ThreadSanitizer and run the tier-1 suite under it
#   --trace   observability gate: run daric_trace on canned scenarios and a
#             chaos schedule replay, then validate every artifact with
#             tools/validate_trace.py
#   --obs     telemetry gate: the sharded-registry torture tests under
#             ThreadSanitizer, a daric_monitor --once smoke run (Theorem-1
#             SLO must hold), and a Prometheus-exposition lint of the
#             monitor's output via tools/validate_trace.py --prom
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BENCH=0
CHAOS=0
DURABLE=0
ANALYZE=0
TSAN=0
TRACE=0
OBS=0
TIDY=0
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--bench" ]] && BENCH=1
[[ "${1:-}" == "--chaos" ]] && CHAOS=1
[[ "${1:-}" == "--durable" ]] && DURABLE=1
[[ "${1:-}" == "--analyze" ]] && ANALYZE=1
[[ "${1:-}" == "--tsan" ]] && TSAN=1
[[ "${1:-}" == "--trace" ]] && TRACE=1
[[ "${1:-}" == "--obs" ]] && OBS=1
[[ "${1:-}" == "--tidy" ]] && TIDY=1

step() { printf '\n=== %s ===\n' "$*"; }

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ERROR: clang-tidy is required but not installed (config: .clang-tidy)" >&2
    return 1
  fi
  step "clang-tidy (src/)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cpp' | xargs clang-tidy -p build --quiet
}

if [[ "$TIDY" == 1 ]]; then
  run_tidy
  echo; echo "check.sh --tidy: clean"
  exit 0
fi

if [[ "$ANALYZE" == 1 ]]; then
  step "static script/transaction analyzer (lints + spend graph + authorization)"
  cmake -B build -S . >/dev/null
  cmake --build build -j --target daric_analyze >/dev/null
  ./build/tools/daric_analyze --auth --json build/analyze_report.json
  python3 tools/validate_trace.py --analyzer build/analyze_report.json
  echo; echo "check.sh --analyze: all templates sound, spenders authorized, Theorem-1 bounds hold"
  exit 0
fi

if [[ "$TRACE" == 1 ]]; then
  step "build trace tooling"
  cmake -B build -S . >/dev/null
  cmake --build build -j --target daric_trace daric_chaos >/dev/null

  step "daric force-close scenario (Theorem 1 timeline)"
  ./build/tools/daric_trace --engine daric --scenario force-close \
    --out build/trace-forceclose
  # Static cross-check: the spend-graph bound at the trace scenario's
  # parameters (Δ=2, T=8) must cover the punish gap the trace observed.
  cmake --build build -j --target daric_analyze >/dev/null
  ./build/tools/daric_analyze --graph --engine daric --tpunish 8 --delta 2 \
    --quiet --json build/trace-forceclose/analyze_report.json
  python3 tools/validate_trace.py \
    --jsonl build/trace-forceclose/trace.jsonl \
    --require-kind force_close --require-kind punish \
    --chrome build/trace-forceclose/trace_chrome.json \
    --metrics build/trace-forceclose/metrics.json \
    --analyzer build/trace-forceclose/analyze_report.json \
    --theorem1-engine daric

  step "daric multi-hop HTLC scenario"
  ./build/tools/daric_trace --engine daric --scenario htlc --out build/trace-htlc
  python3 tools/validate_trace.py \
    --jsonl build/trace-htlc/trace.jsonl \
    --require-kind htlc_lock --require-kind payment_settle \
    --chrome build/trace-htlc/trace_chrome.json \
    --metrics build/trace-htlc/metrics.json

  step "chaos schedule replay with tracer attached"
  ./build/tools/daric_chaos --emit 7 > build/trace-seed7.sched
  ./build/tools/daric_trace --replay build/trace-seed7.sched --protocol daric \
    --out build/trace-replay
  python3 tools/validate_trace.py \
    --jsonl build/trace-replay/trace.jsonl \
    --chrome build/trace-replay/trace_chrome.json \
    --metrics build/trace-replay/metrics.json

  echo; echo "check.sh --trace: all trace artifacts valid"
  exit 0
fi

if [[ "$OBS" == 1 ]]; then
  step "TSan build: sharded-registry torture tests"
  cmake -B build-tsan -S . -DDARIC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target test_obs test_obs_concurrency >/dev/null
  ./build-tsan/tests/test_obs_concurrency
  ./build-tsan/tests/test_obs

  step "daric_monitor --once smoke (Theorem-1 SLO gate)"
  cmake -B build -S . >/dev/null
  cmake --build build -j --target daric_monitor >/dev/null
  ./build/tools/daric_monitor --once --cheat-every 1 \
    --out build/monitor_metrics.log --prom build/monitor.prom

  step "Prometheus exposition lint + durable snapshot sanity"
  python3 tools/validate_trace.py --prom build/monitor.prom
  test -s build/monitor_metrics.log

  echo; echo "check.sh --obs: sharded registry race-free, monitor SLO holds"
  exit 0
fi

if [[ "$TSAN" == 1 ]]; then
  step "TSan build + tier-1 tests"
  cmake -B build-tsan -S . -DDARIC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j >/dev/null
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"
  echo; echo "check.sh --tsan: OK"
  exit 0
fi

if [[ "$BENCH" == 1 ]]; then
  step "Release build for benchmarks"
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j --target bench_crypto bench_update_microbench >/dev/null

  step "bench_crypto -> BENCH_crypto.json"
  ./build-release/bench/bench_crypto \
    --benchmark_out=build-release/bench_crypto_raw.json \
    --benchmark_out_format=json
  python3 tools/bench_to_json.py --name crypto \
    --in build-release/bench_crypto_raw.json --out BENCH_crypto.json \
    --ratio schnorr_verify_speedup_vs_naive_ladder=BM_SchnorrVerifyNaiveLadder/BM_SchnorrVerify \
    --ratio mul_var_point_speedup_vs_naive_ladder=BM_MulVarPointNaiveLadder/BM_MulVarPointWnaf

  step "bench_update_microbench -> BENCH_update_microbench.json"
  # The committed file is the previous PR's baseline; keep it aside before
  # overwriting so the disabled-tracer overhead can be computed against it.
  cp BENCH_update_microbench.json build-release/BENCH_update_baseline.json
  # Shared-host VMs suffer bursty CPU steal that can inflate a single run by
  # 30%+; the per-benchmark minimum over three runs is the robust statistic
  # (noise only ever adds time), so both the committed file and the overhead
  # comparison use it.
  for i in 1 2 3; do
    ./build-release/bench/bench_update_microbench \
      --benchmark_out="build-release/bench_update_raw$i.json" \
      --benchmark_out_format=json
  done
  python3 - <<'PY'
import json
runs = [json.load(open(f"build-release/bench_update_raw{i}.json")) for i in (1, 2, 3)]
merged = runs[0]
best = {}
for run in runs:
    for b in run["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        cur = best.get(b["name"])
        if cur is None or b["real_time"] < cur["real_time"]:
            best[b["name"]] = b
merged["benchmarks"] = [best[b["name"]] for b in runs[0]["benchmarks"]
                        if b.get("run_type") != "aggregate"]
json.dump(merged, open("build-release/bench_update_raw.json", "w"), indent=1)
PY
  python3 tools/bench_to_json.py --name update_microbench \
    --in build-release/bench_update_raw.json --out BENCH_update_microbench.json

  step "disabled-tracer overhead -> BENCH_trace_overhead.json"
  # SHA-256 is the only anchor: it is untouched by both the obs layer and
  # the signature hot-path work, so it isolates machine-speed drift. The
  # signature benchmarks are deliberately NOT anchors — they are themselves
  # optimization targets, and anchoring on them would fold genuine crypto
  # speedups into the correction factor.
  python3 tools/bench_to_json.py --name trace_overhead \
    --in build-release/bench_update_raw.json --out BENCH_trace_overhead.json \
    --baseline build-release/BENCH_update_baseline.json \
    --anchor BM_Sha256_1k \
    --overhead daric_update=BM_DaricUpdate \
    --overhead lightning_update=BM_LightningUpdate \
    --overhead eltoo_update=BM_EltooUpdate \
    --overhead generalized_update=BM_GeneralizedUpdate
  python3 - <<'PY'
import json, sys
ov = json.load(open("BENCH_trace_overhead.json"))["overhead_vs_baseline"]
worst = max(ov, key=ov.get)
print(f"trace overhead vs baseline: worst {worst} = {ov[worst]:.4f}x")
if ov[worst] > 1.05:
    sys.exit(f"ERROR: disabled tracer costs >5% on {worst} ({ov[worst]:.4f}x)")
if ov[worst] > 1.02:
    print(f"WARNING: overhead above the 2% budget on {worst} "
          f"(may be machine noise; re-run to confirm)")
PY

  step "BM_DaricUpdate throughput regression gate"
  # Anchor-corrected updates/s must not drop more than 10% below the
  # committed baseline. The SHA-256 anchor divides out machine drift the
  # same way the trace-overhead correction does.
  python3 - <<'PY'
import json, sys
now = json.load(open("BENCH_update_microbench.json"))["results"]
base = json.load(open("build-release/BENCH_update_baseline.json"))["results"]
anchor = now["BM_Sha256_1k"]["real_time_ns"] / base["BM_Sha256_1k"]["real_time_ns"]
ips_now = now["BM_DaricUpdate"]["items_per_second"]
ips_base = base["BM_DaricUpdate"]["items_per_second"]
corrected = ips_now * anchor  # updates/s at the baseline machine's speed
ratio = corrected / ips_base
print(f"BM_DaricUpdate: {ips_now:.1f} updates/s now, {ips_base:.1f} baseline, "
      f"anchor factor {anchor:.4f} -> corrected ratio {ratio:.3f}x")
if ratio < 0.90:
    sys.exit(f"ERROR: BM_DaricUpdate throughput regressed >10% "
             f"({ratio:.3f}x of baseline after anchor correction)")
PY

  step "bench_obs_scale -> BENCH_obs_scale.json"
  cmake --build build-release -j --target bench_obs_scale >/dev/null
  ./build-release/bench/bench_obs_scale \
    --benchmark_out=build-release/bench_obs_raw.json \
    --benchmark_out_format=json
  python3 tools/bench_to_json.py --name obs_scale \
    --in build-release/bench_obs_raw.json --out BENCH_obs_scale.json \
    --ratio span_enabled_vs_disabled=BM_SpanEnabled/BM_SpanDisabled

  step "sharded-registry scaling gate"
  # Sharded counters must beat the mutex registry at every thread count
  # >= 2, and aggregate throughput must not collapse as threads double
  # (flat is acceptable: on a 1-core host ideal scaling IS flat — the
  # mutex registry, by contrast, loses throughput to contention).
  python3 - <<'PY'
import json, sys
res = json.load(open("BENCH_obs_scale.json"))["results"]
def ips(bm, n):
    return res[f"{bm}/real_time/threads:{n}"]["items_per_second"]
for n in (2, 4, 8):
    sharded, mutexed = ips("BM_CounterSharded", n), ips("BM_CounterMutexRegistry", n)
    print(f"threads={n}: sharded {sharded/1e6:.1f}M/s vs mutex {mutexed/1e6:.1f}M/s")
    if sharded < mutexed:
        sys.exit(f"ERROR: sharded registry slower than mutex registry at {n} threads")
for n in (2, 4, 8):
    if ips("BM_CounterSharded", n) < 0.70 * ips("BM_CounterSharded", n // 2):
        sys.exit(f"ERROR: sharded counter throughput collapsed "
                 f"{n//2}->{n} threads (>30% drop)")
span = json.load(open("BENCH_obs_scale.json"))["results"]["BM_SpanDisabled"]
print(f"disabled span: {span['real_time_ns']:.2f} ns/op")
if span["real_time_ns"] > 5.0:
    sys.exit("ERROR: disabled OBS_SPAN costs >5ns — not one relaxed load")
PY

  step "BENCH build-type sanity"
  python3 - <<'PY'
import json, sys
for f in ("BENCH_crypto.json", "BENCH_update_microbench.json",
          "BENCH_trace_overhead.json", "BENCH_obs_scale.json"):
    bt = json.load(open(f))["context"]["build_type"]
    if bt != "release":
        sys.exit(f"ERROR: {f} records build_type={bt!r}, expected 'release'")
    print(f"{f}: build_type=release ok")
PY

  echo; echo "check.sh --bench: BENCH files written"
  exit 0
fi

if [[ "$CHAOS" == 1 ]]; then
  step "ASan+UBSan build (chaos driver)"
  cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j --target daric_chaos >/dev/null

  step "fixed-seed 200-schedule sweep, all protocols"
  ./build-asan/tools/daric_chaos --sweep 200 --seed 1

  step "watchtower-downtime boundary scan (Theorem 1)"
  ./build-asan/tools/daric_chaos --boundary

  step "committed regression schedules"
  for sched in tests/schedules/*.sched; do
    echo "replay $sched"
    ./build-asan/tools/daric_chaos --replay "$sched" --protocol daric
  done

  echo; echo "check.sh --chaos: all sweeps clean"
  exit 0
fi

if [[ "$DURABLE" == 1 ]]; then
  step "ASan+UBSan build (chaos driver + store tests)"
  cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j --target daric_chaos test_store >/dev/null

  step "durable store unit + torn-tail fuzz tests"
  ./build-asan/tests/test_store

  step "crash-replay sweep: 200 schedules, every message boundary"
  ./build-asan/tools/daric_chaos --durable-sweep 200 --seed 1

  echo; echo "check.sh --durable: crash recovery never violates Theorem 1"
  exit 0
fi

step "plain build + tier-1 tests"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

step "static script/transaction analyzer (all engines, lints + spend graph + auth)"
./build/tools/daric_analyze --graph --json build/analyze_report.json
python3 tools/validate_trace.py --analyzer build/analyze_report.json

step "bounded model check (default safe config)"
./build/tools/daric_modelcheck

step "bounded model check (broken watchtower must fail)"
if ./build/tools/daric_modelcheck --break=watchtower --quiet; then
  echo "ERROR: disabling the watchtowers should trip balance security" >&2
  exit 1
fi
echo "counterexample found, as expected"

step "secret-hygiene lint (src/crypto)"
python3 tools/lint_secrets.py

if command -v clang-tidy >/dev/null 2>&1; then
  run_tidy
elif [[ "${DARIC_REQUIRE_TIDY:-0}" == 1 ]]; then
  echo "ERROR: DARIC_REQUIRE_TIDY=1 but clang-tidy is not installed" >&2
  exit 1
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy," \
       "enforce with --tidy or DARIC_REQUIRE_TIDY=1)"
fi

if [[ "$FAST" == 1 ]]; then
  echo; echo "check.sh --fast: OK (sanitizer pass skipped)"
  exit 0
fi

step "ASan+UBSan build + tier-1 tests"
cmake -B build-asan -S . -DDARIC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

step "bounded model check under sanitizers"
./build-asan/tools/daric_modelcheck --updates 2 --horizon 16

echo; echo "check.sh: all gates passed"
