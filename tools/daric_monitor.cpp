// Live node monitor: drives a long-running Daric deployment (N channels, a
// watchtower service, periodic off-chain updates, periodic fraud attempts)
// and renders a refreshing operator view of the telemetry registry —
// counters, quantile histograms (p50/p90/p99/p999), span profiles, and a
// Theorem-1 SLO gauge tracking the worst observed punish gap against the
// T − Δ budget.
//
//   daric_monitor [--ticks N] [--channels N] [--cheat-every K]
//                 [--interval-ms M] [--once] [--out FILE] [--prom FILE]
//
//   --ticks N        run N monitor ticks (default 20)
//   --channels N     open N concurrent Daric channels (default 4)
//   --cheat-every K  publish a revoked commit every K ticks (default 5)
//   --interval-ms M  sleep between renders (default 250; 0 = no sleep)
//   --once           single tick, single render, no screen clearing (CI)
//   --out FILE       persist a durable metrics snapshot per tick (record
//                    log via store::MetricsLog; survives crashes)
//   --prom FILE      write the Prometheus exposition on every render
//
// Exit status: 0 when every attempted fraud was punished within the
// Theorem-1 budget (T − Δ rounds), 1 on any SLO breach — so CI can gate on
// the monitor itself (tools/check.sh --obs).
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/sig_scheme.h"
#include "src/daric/protocol.h"
#include "src/daric/watchtower.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/environment.h"
#include "src/store/backend.h"
#include "src/store/metrics_log.h"
#include "src/store/tower.h"

namespace {

using namespace daric;
using sim::PartyId;

constexpr Round kDelta = 2;
constexpr Round kTPunish = 8;
constexpr std::int64_t kSloBudget = kTPunish - kDelta;  // Theorem 1: T - delta

struct Options {
  int ticks = 20;
  int channels = 4;
  int cheat_every = 5;
  int interval_ms = 250;
  bool once = false;
  std::string out;
  std::string prom;
};

channel::ChannelParams monitor_params(int n) {
  channel::ChannelParams p;
  p.id = "mon-" + std::to_string(n);
  p.cash_a = 500'000;
  p.cash_b = 500'000;
  p.t_punish = kTPunish;
  return p;
}

class MonitorNode {
 public:
  explicit MonitorNode(sim::Environment& env, store::TowerService& tower, int channels)
      : env_(env),
        tower_(tower),
        punish_gap_(&env.metrics().histogram("monitor.punish_gap_rounds")),
        worst_gap_(&env.metrics().gauge("monitor.punish_gap_worst")),
        cheats_(&env.metrics().counter("monitor.cheats_attempted")),
        breaches_(&env.metrics().counter("monitor.slo_breaches")) {
    for (int i = 0; i < channels; ++i) open_channel();
  }

  /// One monitor tick: an update on every open channel, refreshed tower
  /// packages, and one ledger round.
  void tick() {
    ++tick_;
    for (auto& slot : channels_) {
      if (!slot.ch) continue;
      // Deterministic balance walk, bounced off the deposit bounds.
      const Amount shift = 10'000 * ((tick_ + slot.index) % 7 + 1);
      Amount a = slot.ch->params().cash_a + ((tick_ % 2 == 0) ? shift : -shift);
      const Amount total = slot.ch->params().cash_a + slot.ch->params().cash_b;
      if (a < 50'000) a = 50'000;
      if (a > total - 50'000) a = total - 50'000;
      if (slot.ch->update({a, total - a, {}})) rewatch(slot);
    }
    env_.advance_round();
  }

  /// Publishes a revoked state-0 commit on the next channel in rotation,
  /// with both parties dark — only the tower can react — then measures the
  /// dispute-to-punish gap against the Theorem-1 budget.
  void cheat() {
    if (channels_.empty()) return;
    Slot& slot = channels_[next_cheat_ % channels_.size()];
    ++next_cheat_;
    if (!slot.ch) return;
    cheats_->inc();
    slot.ch->party(PartyId::kA).set_online(false);
    slot.ch->party(PartyId::kB).set_online(false);
    const Round posted = env_.now();
    const std::uint64_t before = tower_.reactions();
    slot.ch->publish_old_commit(PartyId::kA, 0);
    std::int64_t gap = -1;
    for (Round r = 0; r <= kSloBudget + 2; ++r) {
      if (tower_.reactions() > before) {
        gap = static_cast<std::int64_t>(env_.now() - posted);
        break;
      }
      env_.advance_round();
    }
    if (gap < 0) gap = kSloBudget + 2;  // never punished: counted as breach
    punish_gap_->observe(gap);
    if (gap > worst_) {
      worst_ = gap;
      worst_gap_->set(worst_);
    }
    if (gap > kSloBudget) breaches_->inc();
    // The cheat spends the funding outpoint either way; replace the channel
    // so the monitored population stays constant.
    slot.ch.reset();
    open_channel(slot.index);
  }

  std::int64_t worst_gap() const { return worst_; }
  std::uint64_t breaches() const { return breaches_->value(); }
  std::uint64_t cheats() const { return cheats_->value(); }
  int tick_count() const { return tick_; }
  std::size_t open_channels() const {
    std::size_t n = 0;
    for (const auto& s : channels_)
      if (s.ch) ++n;
    return n;
  }

 private:
  struct Slot {
    std::unique_ptr<daricch::DaricChannel> ch;
    int index = 0;
  };

  void open_channel(int reuse_index = -1) {
    const int index = reuse_index >= 0 ? reuse_index : static_cast<int>(channels_.size());
    auto ch = std::make_unique<daricch::DaricChannel>(env_, monitor_params(serial_++));
    if (!ch->create() || !ch->update({450'000, 550'000, {}}) ||
        !ch->update({400'000, 600'000, {}}))
      throw std::runtime_error("monitor: channel bring-up failed");
    if (reuse_index >= 0) {
      channels_[static_cast<std::size_t>(reuse_index)].ch = std::move(ch);
    } else {
      channels_.push_back({std::move(ch), index});
    }
    rewatch(channels_[static_cast<std::size_t>(index)]);
  }

  /// Refreshes the tower's package so the latest revoked state is covered
  /// (the tower keeps one O(1) entry per funding outpoint).
  void rewatch(Slot& slot) {
    tower_.watch(store::make_watch_entry(
        slot.ch->params(), PartyId::kB, slot.ch->funding_outpoint(),
        slot.ch->party(PartyId::kA).pub(), slot.ch->party(PartyId::kB).pub(),
        daricch::make_watchtower_package(slot.ch->party(PartyId::kB))));
  }

  sim::Environment& env_;
  store::TowerService& tower_;
  obs::Histogram* punish_gap_;
  obs::Gauge* worst_gap_;
  obs::Counter* cheats_;
  obs::Counter* breaches_;
  std::vector<Slot> channels_;
  int tick_ = 0;
  int serial_ = 0;
  std::size_t next_cheat_ = 0;
  std::int64_t worst_ = 0;
};

/// One-line bar gauge: worst observed punish gap against the T − Δ budget.
std::string slo_gauge(std::int64_t worst, std::uint64_t breaches) {
  std::ostringstream out;
  out << "theorem-1 SLO  [";
  for (std::int64_t i = 1; i <= kSloBudget; ++i) out << (i <= worst ? '#' : '-');
  out << "] worst punish gap " << worst << "/" << kSloBudget << " rounds  "
      << (breaches == 0 ? "OK" : "BREACHED");
  return out.str();
}

void render(const sim::Environment& env, const MonitorNode& node, const Options& opt) {
  std::ostringstream out;
  if (!opt.once) out << "\x1b[2J\x1b[H";  // clear + home (live refresh)
  out << "daric_monitor  tick " << node.tick_count() << "  round " << env.now()
      << "  channels " << node.open_channels() << "  cheats " << node.cheats()
      << "  breaches " << node.breaches() << "\n"
      << slo_gauge(node.worst_gap(), node.breaches()) << "\n\n"
      << "== metrics ==\n"
      << env.metrics().summary_text() << "\n== span profile (ns) ==\n"
      << obs::profile_registry().summary_text();
  std::cout << out.str() << std::flush;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::stoi(argv[++i]);
      return true;
    };
    if (a == "--once") {
      opt.once = true;
    } else if (a == "--ticks" && next(opt.ticks)) {
    } else if (a == "--channels" && next(opt.channels)) {
    } else if (a == "--cheat-every" && next(opt.cheat_every)) {
    } else if (a == "--interval-ms" && next(opt.interval_ms)) {
    } else if (a == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (a == "--prom" && i + 1 < argc) {
      opt.prom = argv[++i];
    } else {
      std::cerr << "daric_monitor: unknown or incomplete flag '" << a << "'\n"
                << "usage: daric_monitor [--ticks N] [--channels N] [--cheat-every K]\n"
                << "                     [--interval-ms M] [--once] [--out FILE] [--prom FILE]"
                << std::endl;
      return false;
    }
  }
  if (opt.channels < 1) opt.channels = 1;
  if (opt.cheat_every < 1) opt.cheat_every = 1;
  if (opt.once) opt.ticks = 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  obs::set_spans_enabled(true);  // the span table is the point of the tool

  sim::Environment env(kDelta, crypto::schnorr_scheme());
  store::MemoryBackend tower_disk;
  store::TowerService tower(tower_disk, &env.metrics());
  env.add_round_hook([&] { tower.on_round(env.ledger()); });

  std::unique_ptr<store::FileBackend> snap_disk;
  std::unique_ptr<store::MetricsLog> snaps;
  if (!opt.out.empty()) {
    snap_disk = std::make_unique<store::FileBackend>(opt.out);
    snaps = std::make_unique<store::MetricsLog>(*snap_disk, /*keep=*/32);
  }

  try {
    MonitorNode node(env, tower, opt.channels);
    for (int t = 1; t <= opt.ticks; ++t) {
      node.tick();
      if (t % opt.cheat_every == 0) node.cheat();
      if (snaps) snaps->snapshot(env.metrics(), static_cast<std::uint64_t>(env.now()));
      render(env, node, opt);
      if (!opt.prom.empty()) {
        std::ofstream prom(opt.prom);
        if (!prom) throw std::runtime_error("cannot open " + opt.prom);
        prom << env.metrics().expose_text() << obs::profile_registry().expose_text();
      }
      if (!opt.once && opt.interval_ms > 0 && t < opt.ticks)
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
    const bool ok = node.breaches() == 0;
    std::cout << "\ndaric_monitor: " << node.cheats() << " frauds attempted, worst gap "
              << node.worst_gap() << "/" << kSloBudget << " rounds, "
              << node.breaches() << " SLO breach(es) -> " << (ok ? "OK" : "FAIL")
              << std::endl;
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "daric_monitor: " << e.what() << std::endl;
    return 2;
  }
}
