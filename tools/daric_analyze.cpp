// Static script/transaction analyzer CI gate.
//
// Enumerates every transaction template the four channel engines (daric,
// lightning, eltoo, generalized) can emit for the bounded model's state
// schedule, then proves each witness script sound by exhaustive symbolic
// execution and cross-checks each template's timelocks, sighash flags and
// value balance (lint catalogue DA001..DA017, see src/analyze/lints.h).
//
// Usage:
//   daric_analyze [--engine NAME] [--suppress DA001,DA007] [--updates N]
//                 [--tpunish T] [--list] [--quiet]
//
// Exit status: 0 = no unsuppressed errors, 1 = errors found, 2 = bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/analyze/engines.h"
#include "src/analyze/lints.h"
#include "src/analyze/report.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine daric|lightning|eltoo|generalized]\n"
               "          [--suppress DAxxx[,DAxxx...]] [--updates N] [--tpunish T]\n"
               "          [--list] [--quiet]\n",
               argv0);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace daric;

  verify::Options model;  // defaults: Δ=1, T=3, 3 updates
  std::vector<std::string> engines = analyze::engine_names();
  analyze::Report report;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      engines = {next()};
    } else if (arg == "--suppress") {
      for (const std::string& id : split_commas(next())) report.suppress(id);
    } else if (arg == "--updates") {
      model.max_updates = std::atoi(next());
    } else if (arg == "--tpunish") {
      model.t_punish = std::atol(next());
    } else if (arg == "--list") {
      for (const analyze::Lint& l : analyze::lint_catalogue())
        std::printf("%s  %-7s  %s\n", l.id, analyze::severity_name(l.severity), l.title);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  const channel::ChannelParams params = analyze::params_for_model(model);
  std::size_t total_templates = 0;
  for (const std::string& engine : engines) {
    std::vector<analyze::TxTemplate> templates;
    try {
      templates = analyze::engine_templates(engine, params, model);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "daric_analyze: %s\n", e.what());
      return 2;
    }
    total_templates += templates.size();
    analyze::lint_templates(templates, report);
    if (!quiet)
      std::printf("daric_analyze: %-12s %3zu templates\n", engine.c_str(),
                  templates.size());
  }

  if (!quiet && !report.findings().empty()) std::printf("%s", report.render().c_str());
  std::printf("daric_analyze: %zu templates, %zu errors, %zu warnings\n", total_templates,
              report.error_count(), report.warning_count());
  return report.has_errors() ? 1 : 0;
}
