// Static script/transaction analyzer CI gate.
//
// Enumerates every transaction template the six channel engines (daric,
// lightning, eltoo, generalized, cerberus, fppw) can emit for the bounded
// model's state schedule, then proves each witness script sound by
// exhaustive symbolic execution and cross-checks each template's timelocks,
// sighash flags and value balance (lint catalogue DA001..DA017, see
// src/analyze/lints.h). With --graph it additionally builds the
// whole-protocol spend graph, runs the knowledge-based authorization
// analysis (DA023..DA028, src/analyze/auth.h) and the reachability/race
// analysis (DA018..DA022, src/analyze/reach.h), reporting each engine's
// concrete Theorem-1 punish-confirmation bound against the limit T−Δ.
// --auth additionally prints, per engine, the exact principal set able to
// satisfy every spend-graph edge at the analysis time.
//
// Usage:
//   daric_analyze [--engine NAME] [--suppress DA001,DA007] [--updates N]
//                 [--tpunish T] [--delta D] [--graph] [--auth] [--dot FILE]
//                 [--json FILE] [--list] [--quiet]
//
// Exit status: 0 = no unsuppressed errors, 1 = errors found, 2 = bad usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analyze/auth.h"
#include "src/analyze/engines.h"
#include "src/analyze/graph.h"
#include "src/analyze/lints.h"
#include "src/analyze/reach.h"
#include "src/analyze/report.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine daric|lightning|eltoo|generalized|cerberus|fppw]\n"
               "          [--suppress DAxxx[,DAxxx...]] [--updates N] [--tpunish T]\n"
               "          [--delta D] [--graph] [--auth] [--dot FILE] [--json FILE]\n"
               "          [--list] [--quiet]\n",
               argv0);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_principals(const daric::analyze::PrincipalSet& s) {
  using daric::analyze::Principal;
  std::string out = "[";
  for (Principal p : {Principal::kPartyP, Principal::kPartyQ, Principal::kTower,
                      Principal::kAdversary, Principal::kAnyone}) {
    if (!s.has(p)) continue;
    if (out.size() > 1) out += ", ";
    out += '"';
    out += daric::analyze::principal_name(p);
    out += '"';
  }
  return out + "]";
}

std::string edge_source(const daric::analyze::SpendGraph& g,
                        const daric::analyze::SpendGraph::Edge& e) {
  const auto& node = g.outputs[static_cast<std::size_t>(e.source)];
  if (node.producer < 0) return "root.out" + std::to_string(node.vout);
  return g.tmpl(node.producer).label() + ".out" + std::to_string(node.vout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace daric;

  verify::Options model;  // defaults: Δ=1, T=3, 3 updates
  std::vector<std::string> engines = analyze::engine_names();
  analyze::Report report;
  bool quiet = false;
  bool graph = false;
  bool auth_report = false;
  std::string dot_path, json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      engines = {next()};
    } else if (arg == "--suppress") {
      for (const std::string& id : split_commas(next())) {
        bool known = false;
        for (const analyze::Lint& l : analyze::lint_catalogue())
          if (id == l.id) {
            known = true;
            break;
          }
        if (!known) {
          std::fprintf(stderr, "daric_analyze: unknown lint id '%s' (see --list)\n",
                       id.c_str());
          return 2;
        }
        report.suppress(id);
      }
    } else if (arg == "--updates") {
      model.max_updates = std::atoi(next());
    } else if (arg == "--tpunish") {
      model.t_punish = std::atol(next());
    } else if (arg == "--delta") {
      model.delta = std::atol(next());
    } else if (arg == "--graph") {
      graph = true;
    } else if (arg == "--auth") {
      graph = true;
      auth_report = true;
    } else if (arg == "--dot") {
      graph = true;
      dot_path = next();
    } else if (arg == "--json") {
      graph = true;
      json_path = next();
    } else if (arg == "--list") {
      for (const analyze::Lint& l : analyze::lint_catalogue())
        std::printf("%s  %-7s  %s\n", l.id, analyze::severity_name(l.severity), l.title);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  const channel::ChannelParams params = analyze::params_for_model(model);
  std::size_t total_templates = 0;
  std::vector<analyze::ReachReport> bounds;
  std::vector<std::string> auth_json;  // one pre-rendered object per engine
  std::ofstream dot_out;
  if (!dot_path.empty()) {
    dot_out.open(dot_path);
    if (!dot_out) {
      std::fprintf(stderr, "daric_analyze: cannot write %s\n", dot_path.c_str());
      return 2;
    }
  }

  for (const std::string& engine : engines) {
    std::vector<analyze::TxTemplate> templates;
    analyze::KnowledgeBase kb;
    try {
      templates = analyze::engine_templates(engine, params, model,
                                            graph ? &kb : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "daric_analyze: %s\n", e.what());
      return 2;
    }
    total_templates += templates.size();
    analyze::lint_templates(templates, report);
    if (!quiet)
      std::printf("daric_analyze: %-12s %3zu templates\n", engine.c_str(),
                  templates.size());
    if (graph) {
      const analyze::SpendGraph g = analyze::build_spend_graph(std::move(templates));
      const analyze::AuthParams ap{model.delta, model.t_punish, -1};
      const analyze::AuthReport auth = analyze::analyze_authorization(g, kb, ap, report);
      const analyze::ReachParams rp{model.delta, model.t_punish};
      bounds.push_back(analyze::analyze_reachability(g, rp, report, &auth));
      const analyze::ReachReport& r = bounds.back();

      if (auth_report && !quiet) {
        std::printf("daric_analyze: %-12s auth: now=%d, %zu satisfiable edges\n",
                    engine.c_str(), auth.now,
                    static_cast<std::size_t>(std::count_if(
                        g.edges.begin(), g.edges.end(),
                        [](const analyze::SpendGraph::Edge& e) { return e.satisfiable; })));
        for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
          const analyze::SpendGraph::Edge& e = g.edges[ei];
          if (!e.satisfiable) continue;
          std::printf("  %s <- %s: %s\n",
                      (g.tmpl(e.spender).label() + "#in" + std::to_string(e.input)).c_str(),
                      edge_source(g, e).c_str(),
                      auth.edges[ei].authorized.render().c_str());
        }
        for (const analyze::LatestPath& lp : auth.latest_paths) {
          std::printf("  latest %s %s: %s\n", lp.where.c_str(),
                      lp.covered ? "[covered]" : "[uncovered]",
                      lp.principals.render().c_str());
        }
      }

      {
        std::ostringstream a;
        a << "{\"engine\": \"" << auth.engine << "\", \"now\": " << auth.now
          << ", \"edges\": " << auth.edges.size() << ", \"spenders\": [";
        bool first = true;
        for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
          const analyze::SpendGraph::Edge& e = g.edges[ei];
          if (!e.satisfiable) continue;
          a << (first ? "" : ", ") << "{\"edge\": \""
            << json_escape(g.tmpl(e.spender).label() + "#in" + std::to_string(e.input))
            << "\", \"source\": \"" << json_escape(edge_source(g, e))
            << "\", \"principals\": " << json_principals(auth.edges[ei].authorized)
            << "}";
          first = false;
        }
        a << "], \"latest_paths\": [";
        for (std::size_t li = 0; li < auth.latest_paths.size(); ++li) {
          const analyze::LatestPath& lp = auth.latest_paths[li];
          a << (li ? ", " : "") << "{\"where\": \"" << json_escape(lp.where)
            << "\", \"covered\": " << (lp.covered ? "true" : "false")
            << ", \"principals\": " << json_principals(lp.principals) << "}";
        }
        a << "]}";
        auth_json.push_back(a.str());
      }
      if (!quiet) {
        std::printf(
            "daric_analyze: %-12s graph: %zu outputs, %zu edges, %zu roots; "
            "%zu stale commits, %zu/%zu races won; theorem1 bound %lld <= %lld\n",
            engine.c_str(), g.outputs.size(), g.edges.size(), g.root_count(),
            r.stale_commits, r.races_won(), r.races.size(),
            static_cast<long long>(r.theorem1_bound),
            static_cast<long long>(r.bound_limit));
      }
      if (dot_out.is_open()) dot_out << analyze::to_dot(g);
    }
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::fprintf(stderr, "daric_analyze: cannot write %s\n", json_path.c_str());
      return 2;
    }
    js << "{\n  \"params\": {\"delta\": " << model.delta
       << ", \"t_punish\": " << model.t_punish
       << ", \"max_updates\": " << model.max_updates << "},\n  \"engines\": [";
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      const analyze::ReachReport& r = bounds[i];
      js << (i ? ",\n    " : "\n    ") << "{\"engine\": \"" << r.engine
         << "\", \"templates\": " << r.templates
         << ", \"stale_commits\": " << r.stale_commits
         << ", \"races\": " << r.races.size()
         << ", \"races_won\": " << r.races_won()
         << ", \"theorem1_bound\": " << r.theorem1_bound
         << ", \"bound_limit\": " << r.bound_limit << ", \"punish_reachable\": "
         << (r.punish_reachable ? "true" : "false") << "}";
    }
    js << "\n  ],\n  \"auth\": [";
    for (std::size_t i = 0; i < auth_json.size(); ++i)
      js << (i ? ",\n    " : "\n    ") << auth_json[i];
    js << (auth_json.empty() ? "" : "\n  ") << "],\n  \"findings\": [";
    const auto& fs = report.findings();
    for (std::size_t i = 0; i < fs.size(); ++i) {
      js << (i ? ",\n    " : "\n    ") << "{\"id\": \"" << fs[i].id
         << "\", \"severity\": \"" << analyze::severity_name(fs[i].severity)
         << "\", \"where\": \"" << json_escape(fs[i].where)
         << "\", \"message\": \"" << json_escape(fs[i].message) << "\"";
      if (!fs[i].principals.empty())
        js << ", \"principals\": \"" << json_escape(fs[i].principals) << "\"";
      js << "}";
    }
    js << (fs.empty() ? "" : "\n  ") << "],\n  \"errors\": " << report.error_count()
       << ",\n  \"warnings\": " << report.warning_count() << "\n}\n";
  }

  if (!quiet && !report.findings().empty()) std::printf("%s", report.render().c_str());
  std::printf("daric_analyze: %zu templates, %zu errors, %zu warnings\n", total_templates,
              report.error_count(), report.warning_count());
  return report.has_errors() ? 1 : 0;
}
