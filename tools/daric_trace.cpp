// Trace driver: runs a canned scenario on one channel engine — or replays a
// chaos fault schedule — with the obs tracer enabled, and writes the full
// artifact set for offline analysis:
//
//   trace.jsonl        one JSON object per event, in emission order
//   trace_chrome.json  Chrome trace_event export (load in ui.perfetto.dev)
//   metrics.json       metrics-registry snapshot
//   metrics.txt        plain-text metrics summary
//
//   daric_trace --engine E --scenario S [--out DIR]
//   daric_trace --replay FILE [--protocol P] [--out DIR]
//   daric_trace --list
//
// For the Daric force-close scenario the tool additionally audits the
// Theorem 1 timeline from the trace itself: the revocation (punish) event
// must land within T − Δ rounds of the dispute publication.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/scenarios.h"
#include "src/obs/sinks.h"
#include "src/sim/faults/drill.h"
#include "src/sim/faults/schedule.h"

namespace {

using namespace daric;
using namespace daric::sim::faults;

constexpr Round kTPunish = 8;  // scenario constants (src/obs/scenarios.cpp)
constexpr Round kDelta = 2;

void write_text(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out << body;
  if (!body.empty() && body.back() != '\n') out << '\n';
}

void write_artifacts(const std::filesystem::path& dir, const std::string& stem,
                     const std::vector<obs::Event>& events, const std::string& metrics_json,
                     const std::string& metrics_text) {
  std::filesystem::create_directories(dir);
  obs::write_jsonl((dir / (stem + ".jsonl")).string(), events);
  obs::write_chrome_trace((dir / (stem + "_chrome.json")).string(), events);
  write_text(dir / "metrics.json", metrics_json);
  write_text(dir / "metrics.txt", metrics_text);
  std::cout << "trace: wrote " << events.size() << " events to " << (dir / stem).string()
            << ".jsonl (+ chrome/metrics artifacts)" << std::endl;
}

/// Audits the Theorem 1 timeline directly from the event stream: the first
/// force_close event is the dispute publication; the first punish event is
/// the victim's revocation. Returns false on violation.
bool check_theorem1(const std::vector<obs::Event>& events) {
  std::optional<std::int64_t> dispute, punish;
  for (const obs::Event& e : events) {
    if (e.engine != "daric") continue;
    if (!dispute && e.kind == obs::EventKind::kForceClose) dispute = e.round;
    if (!punish && e.kind == obs::EventKind::kPunish) punish = e.round;
  }
  if (!dispute || !punish) {
    std::cerr << "trace: theorem-1 audit failed: missing "
              << (!dispute ? "force_close" : "punish") << " event" << std::endl;
    return false;
  }
  const std::int64_t bound = kTPunish - kDelta;
  const std::int64_t gap = *punish - *dispute;
  const bool ok = gap >= 0 && gap <= bound;
  std::cout << "trace: theorem-1 timeline: dispute posted round " << *dispute
            << ", punish round " << *punish << ", gap " << gap << " <= T-delta=" << bound
            << (ok ? "  OK" : "  VIOLATION") << std::endl;
  return ok;
}

int run_scenario_mode(const std::string& engine, const std::string& scenario,
                      const std::filesystem::path& out) {
  const obs::ScenarioRun r = obs::run_scenario(engine, scenario);
  std::cout << "trace: " << engine << "/" << scenario << ": " << (r.ok ? "ok" : "FAIL")
            << " (" << r.detail << ")" << std::endl;
  write_artifacts(out, "trace", r.events, r.metrics_json, r.metrics_text);
  bool ok = r.ok;
  if (engine == "daric" && scenario == "force-close") ok = check_theorem1(r.events) && ok;
  return ok ? 0 : 1;
}

Protocol protocol_from(const std::string& name) {
  if (name == "daric") return Protocol::kDaric;
  if (name == "lightning") return Protocol::kLightning;
  if (name == "generalized") return Protocol::kGeneralized;
  if (name == "eltoo") return Protocol::kEltoo;
  throw std::runtime_error("unknown protocol '" + name + "'");
}

int run_replay_mode(const std::string& path, const std::string& proto,
                    const std::filesystem::path& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace: cannot open '" << path << "'" << std::endl;
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const FaultSchedule s = parse_schedule(buf.str());

  obs::CollectSink sink;
  std::string metrics_json, metrics_text;
  DrillObs attach{&sink, &metrics_json, &metrics_text};
  const DrillReport r = run_drill(protocol_from(proto), s, attach);

  std::cout << "trace: replay seed " << s.seed << " on " << proto << ": "
            << (r.ok ? "ok" : "FAIL") << " (" << r.detail << ") updates=" << r.updates_done
            << " msgs=" << r.msg_total << " drop=" << r.msg_dropped << std::endl;
  write_artifacts(out, "trace", sink.events, metrics_json, metrics_text);
  return r.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "daric", scenario, replay_path, proto = "daric";
  std::filesystem::path out = "trace-out";
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "trace: " << a << " needs a value" << std::endl;
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--engine") engine = next();
    else if (a == "--scenario") scenario = next();
    else if (a == "--replay") replay_path = next();
    else if (a == "--protocol") proto = next();
    else if (a == "--out") out = next();
    else if (a == "--list") list = true;
    else {
      std::cerr << "usage: daric_trace --engine daric|lightning|eltoo|generalized "
                   "--scenario update|force-close|htlc [--out DIR]\n"
                   "       daric_trace --replay SCHED_FILE [--protocol P] [--out DIR]\n"
                   "       daric_trace --list"
                << std::endl;
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  try {
    if (list) {
      std::cout << "engines:";
      for (const auto& e : daric::obs::scenario_engines()) std::cout << ' ' << e;
      std::cout << "\nscenarios:";
      for (const auto& s : daric::obs::scenario_names()) std::cout << ' ' << s;
      std::cout << std::endl;
      return 0;
    }
    if (!replay_path.empty()) return run_replay_mode(replay_path, proto, out);
    if (!scenario.empty()) return run_scenario_mode(engine, scenario, out);
    std::cerr << "trace: nothing to do (try --engine daric --scenario force-close)"
              << std::endl;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "trace: error: " << e.what() << std::endl;
    return 2;
  }
}
