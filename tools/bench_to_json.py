#!/usr/bin/env python3
"""Converts google-benchmark JSON output into the repo's BENCH_*.json format.

The BENCH format is a compact, diffable snapshot of one benchmark binary:

    {
      "bench": "crypto",
      "context": {"host": ..., "num_cpus": ..., "build_type": ...},
      "results": {
        "BM_SchnorrVerify": {"real_time_ns": ..., "cpu_time_ns": ...,
                             "items_per_second": ...},   # when reported
        ...
      },
      "ratios": {"schnorr_verify_speedup_vs_naive_ladder": 3.4, ...}
    }

Ratios are requested on the command line as ``name=BM_SLOW/BM_FAST`` and
computed from real time (``time(BM_SLOW) / time(BM_FAST)``), so a speedup
ratio names the baseline first. For parameterized benchmarks pass the full
name including the argument suffix (``BM_Foo/8``).

Two optional enrichments:

``--metrics FILE`` embeds an obs metrics-registry snapshot (the
``metrics.json`` written by daric_trace) under an ``out["metrics"]`` key, so
a BENCH file can carry the instrumentation counters of the run it measured.
Histogram quantiles (p50/p90/p99/p999) are required on every non-empty
histogram and additionally lifted to a flat ``out["histogram_quantiles"]``
map so EXPERIMENTS.md tables can cite p99s without digging through buckets.

``--baseline FILE --overhead name=BM_X`` compares this run against a prior
BENCH_*.json: the overhead ratio is ``real_time(now) / real_time(baseline)``
for benchmark ``BM_X`` (1.0 = unchanged, 1.02 = 2% slower). Used by
check.sh --bench to prove the disabled tracer costs <2% on the update path.

``--anchor BM_Y`` (repeatable, with --baseline) corrects the overhead
ratios for machine-speed drift between the two runs: anchors must be
benchmarks untouched by the change being measured (e.g. pure-crypto
kernels), the geometric mean of their now/baseline ratios is reported as
``anchor_factor``, and every overhead ratio is divided by it. On shared
hosts raw cross-run wall time moves 20%+ with CPU steal; the ratio of
ratios cancels that while preserving any real slowdown in the measured
benchmarks.

Usage:
    bench_to_json.py --name crypto --in raw.json --out BENCH_crypto.json \
        [--ratio schnorr_verify_speedup_vs_naive_ladder=BM_SchnorrVerifyNaiveLadder/BM_SchnorrVerify] ...

Exit: 0 on success, 2 on usage/IO error or a ratio/overhead referencing a
missing benchmark (so check.sh fails loudly instead of committing a hollow
file).
"""

from __future__ import annotations

import argparse
import json
import sys


def to_ns(value: float, unit: str) -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
    if scale is None:
        raise ValueError(f"unknown time unit {unit!r}")
    return value * scale


def split_ratio(spec: str) -> tuple[str, str, str]:
    name, _, expr = spec.partition("=")
    if not name or "/" not in expr:
        raise ValueError(f"bad --ratio {spec!r}; expected name=BM_SLOW/BM_FAST")
    # Parameterized benchmark names contain '/' themselves (BM_Foo/8), so a
    # ratio of two such names has several slashes; split at the boundary
    # between a digit-or-name end and the following BM_ prefix.
    slow, sep, fast = expr.rpartition("/BM_")
    if not sep:
        raise ValueError(f"bad --ratio {spec!r}; denominator must be a BM_ name")
    return name, slow, "BM_" + fast


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--name", required=True, help="bench id, e.g. 'crypto'")
    ap.add_argument("--in", dest="raw", required=True, help="google-benchmark JSON")
    ap.add_argument("--out", required=True, help="BENCH_*.json to write")
    ap.add_argument("--ratio", action="append", default=[],
                    help="name=BM_SLOW/BM_FAST, computed from real time")
    ap.add_argument("--metrics", help="obs registry snapshot JSON to embed")
    ap.add_argument("--baseline", help="prior BENCH_*.json to compare against")
    ap.add_argument("--overhead", action="append", default=[],
                    help="name=BM_X: real_time(now)/real_time(baseline)")
    ap.add_argument("--anchor", action="append", default=[],
                    help="untouched benchmark used to cancel machine drift")
    args = ap.parse_args(argv[1:])

    if (args.overhead or args.anchor) and not args.baseline:
        print("error: --overhead/--anchor require --baseline", file=sys.stderr)
        return 2

    try:
        with open(args.raw, encoding="utf-8") as f:
            raw = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.raw}: {e}", file=sys.stderr)
        return 2

    ctx = raw.get("context", {})
    results: dict[str, dict[str, float]] = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        try:
            entry = {
                "real_time_ns": round(to_ns(b["real_time"], b["time_unit"]), 2),
                "cpu_time_ns": round(to_ns(b["cpu_time"], b["time_unit"]), 2),
            }
        except (KeyError, ValueError) as e:
            print(f"error: malformed benchmark entry {b.get('name')!r}: {e}",
                  file=sys.stderr)
            return 2
        if "items_per_second" in b:
            entry["items_per_second"] = round(b["items_per_second"], 2)
        results[b["name"]] = entry

    if not results:
        print(f"error: {args.raw} contains no benchmark results", file=sys.stderr)
        return 2

    ratios: dict[str, float] = {}
    for spec in args.ratio:
        try:
            name, slow, fast = split_ratio(spec)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        missing = [n for n in (slow, fast) if n not in results]
        if missing:
            print(f"error: ratio {name!r} references missing benchmark(s): "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 2
        ratios[name] = round(
            results[slow]["real_time_ns"] / results[fast]["real_time_ns"], 3)

    overheads: dict[str, float] = {}
    anchor_factor = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as f:
                base = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {args.baseline}: {e}", file=sys.stderr)
            return 2
        base_results = base.get("results", {})
        if args.anchor:
            import math
            log_sum = 0.0
            for bm in args.anchor:
                if bm not in results or bm not in base_results:
                    where = "this run" if bm not in results else args.baseline
                    print(f"error: anchor {bm} missing from {where}",
                          file=sys.stderr)
                    return 2
                log_sum += math.log(
                    results[bm]["real_time_ns"] / base_results[bm]["real_time_ns"])
            anchor_factor = round(math.exp(log_sum / len(args.anchor)), 4)
        for spec in args.overhead:
            name, _, bm = spec.partition("=")
            if not name or not bm:
                print(f"error: bad --overhead {spec!r}; expected name=BM_X",
                      file=sys.stderr)
                return 2
            if bm not in results:
                print(f"error: overhead {name!r}: {bm} missing from this run",
                      file=sys.stderr)
                return 2
            if bm not in base_results:
                print(f"error: overhead {name!r}: {bm} missing from baseline "
                      f"{args.baseline}", file=sys.stderr)
                return 2
            ratio = results[bm]["real_time_ns"] / base_results[bm]["real_time_ns"]
            if anchor_factor:
                ratio /= anchor_factor
            overheads[name] = round(ratio, 4)

    metrics = None
    quantiles: dict[str, dict[str, int]] = {}
    if args.metrics:
        try:
            with open(args.metrics, encoding="utf-8") as f:
                metrics = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {args.metrics}: {e}", file=sys.stderr)
            return 2
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                print(f"error: {args.metrics} is not a registry snapshot "
                      f"(missing {section!r})", file=sys.stderr)
                return 2
        for hname, h in metrics["histograms"].items():
            if h.get("count", 0) == 0:
                continue
            qs = h.get("quantiles")
            if not isinstance(qs, dict) or any(
                    k not in qs for k in ("p50", "p90", "p99", "p999")):
                print(f"error: {args.metrics}: histogram {hname!r} is "
                      f"non-empty but carries no quantiles (stale snapshot "
                      f"format?)", file=sys.stderr)
                return 2
            quantiles[hname] = {k: qs[k] for k in ("p50", "p90", "p99", "p999")}

    out = {
        "bench": args.name,
        "context": {
            "host": ctx.get("host_name", "unknown"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            # daric_build_type (from DARIC_BENCHMARK_MAIN) reflects the
            # bench binary itself; library_build_type only describes the
            # system-installed benchmark library and can say "debug" for a
            # Release binary.
            "build_type": ctx.get("daric_build_type",
                                  ctx.get("library_build_type", "unknown")),
            "date": ctx.get("date", "unknown"),
        },
        "results": results,
    }
    if ratios:
        out["ratios"] = ratios
    if overheads:
        out["overhead_vs_baseline"] = overheads
    if anchor_factor is not None:
        out["anchor_factor"] = anchor_factor
        out["anchors"] = args.anchor
    if metrics is not None:
        out["metrics"] = metrics
        if quantiles:
            out["histogram_quantiles"] = quantiles

    try:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=2, sort_keys=False)
            f.write("\n")
    except OSError as e:
        print(f"error: cannot write {args.out}: {e}", file=sys.stderr)
        return 2

    parts = [f"{k}={v}x" for k, v in ratios.items()]
    parts += [f"{k}={v:.4f}" for k, v in overheads.items()]
    summary = ", ".join(parts) or f"{len(results)} results"
    print(f"bench_to_json: wrote {args.out} ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
