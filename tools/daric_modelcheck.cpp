// Bounded exhaustive model checker for the Daric channel state machine.
//
// Explores every interleaving of protocol actions (updates, per-message
// update aborts, stale/latest commit publication by either party,
// adversary-chosen confirmation delays τ ≤ Δ, crashes/recoveries,
// watchtower reactions) up to the configured depth/horizon, checking the
// Theorem-1 invariants at every reachable state.
//
// Usage:
//   daric_modelcheck [--depth N] [--horizon R] [--delta D] [--tpunish T]
//                    [--updates N] [--max-states M] [--no-crash]
//                    [--break=watchtower | --break=tower-a | --break=tower-b]
//                    [--samples K] [--quiet]
//
// Exit status: 0 = no invariant violations, 1 = violations found,
// 2 = bad usage.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/verify/explorer.h"
#include "src/verify/trace.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--depth N] [--horizon R] [--delta D] [--tpunish T]\n"
               "          [--updates N] [--max-states M] [--no-crash]\n"
               "          [--break=watchtower|tower-a|tower-b] [--samples K] [--quiet]\n",
               argv0);
}

bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using daric::verify::Explorer;
  using daric::verify::Options;

  Options opts;  // defaults: Δ=1, T=3, 3 updates, horizon 22, crash+towers on
  std::size_t samples = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_long = [&](long* out) {
      if (i + 1 >= argc || !parse_long(argv[++i], out)) {
        usage(argv[0]);
        std::exit(2);
      }
    };
    long v = 0;
    if (arg == "--depth") { next_long(&v); opts.max_depth = static_cast<int>(v); }
    else if (arg == "--horizon") { next_long(&v); opts.horizon = v; }
    else if (arg == "--delta") { next_long(&v); opts.delta = v; }
    else if (arg == "--tpunish") { next_long(&v); opts.t_punish = v; }
    else if (arg == "--updates") { next_long(&v); opts.max_updates = static_cast<int>(v); }
    else if (arg == "--max-states") { next_long(&v); opts.max_states = static_cast<std::uint64_t>(v); }
    else if (arg == "--samples") { next_long(&v); samples = static_cast<std::size_t>(v); }
    else if (arg == "--no-crash") { opts.allow_crash = false; }
    else if (arg == "--break=watchtower") { opts.tower_a = opts.tower_b = false; }
    else if (arg == "--break=tower-a") { opts.tower_a = false; }
    else if (arg == "--break=tower-b") { opts.tower_b = false; }
    else if (arg == "--quiet") { quiet = true; }
    else if (arg == "--help" || arg == "-h") { usage(argv[0]); return 0; }
    else { usage(argv[0]); return 2; }
  }

  try {
    opts.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad configuration: %s\n", e.what());
    return 2;
  }

  Explorer explorer(opts);
  if (samples > 0) explorer.collect_sample_traces(samples);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = explorer.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("daric_modelcheck: Δ=%lld T=%lld updates=%d horizon=%lld depth=%d "
              "towers=%c%c crash=%s\n",
              static_cast<long long>(opts.delta), static_cast<long long>(opts.t_punish),
              opts.max_updates, static_cast<long long>(opts.horizon), opts.max_depth,
              opts.tower_a ? 'A' : '-', opts.tower_b ? 'B' : '-',
              opts.allow_crash ? "on" : "off");
  std::printf("  distinct states : %llu%s\n",
              static_cast<unsigned long long>(res.distinct_states),
              res.state_cap_hit ? " (state cap hit)" : "");
  std::printf("  transitions     : %llu\n", static_cast<unsigned long long>(res.transitions));
  std::printf("  terminal states : %llu\n",
              static_cast<unsigned long long>(res.terminal_states));
  std::printf("  resolved states : %llu (punished: %llu)\n",
              static_cast<unsigned long long>(res.resolved_states),
              static_cast<unsigned long long>(res.punished_states));
  std::printf("  max depth       : %d\n", res.max_depth_reached);
  std::printf("  time            : %.2fs (%.0f states/s)\n", secs,
              secs > 0 ? static_cast<double>(res.distinct_states) / secs : 0.0);
  std::printf("  violations      : %zu\n", res.violations.size());

  if (!quiet) {
    for (const auto& rep : res.violations)
      std::printf("%s", daric::verify::violation_to_string(rep, opts).c_str());
    if (samples > 0)
      for (const auto& trace : res.sample_traces)
        std::printf("sample trace: %s\n", daric::verify::trace_to_string(trace).c_str());
  }

  return res.violations.empty() ? 0 : 1;
}
