// Chaos sweep driver: replays seeded fault schedules against the Daric
// engine and the Lightning / generalized / eltoo baselines, asserting the
// funds-security invariants after every run.
//
//   daric_chaos --sweep N [--seed S0] [--protocol P]   N seeded schedules
//   daric_chaos --durable-sweep N [--seed S0]          N crash-replay schedules
//   daric_chaos --replay FILE [--protocol P]           replay one schedule
//   daric_chaos --emit SEED                            print a schedule
//   daric_chaos --boundary [--t-punish T] [--delta D]  downtime boundary scan
//
// Exit status is non-zero the moment any run misbehaves, and the offending
// schedule is printed in its canonical text form so it can be replayed
// byte-for-byte with --replay. With --trace-out DIR, any failing drill is
// re-run deterministically with the tracer attached and its full event
// trace + metrics snapshot are written under DIR (first 5 failures).
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/sinks.h"
#include "src/sim/faults/drill.h"
#include "src/sim/faults/rng.h"
#include "src/sim/faults/schedule.h"

namespace {

using namespace daric;
using namespace daric::sim::faults;

void print_report(const DrillReport& r) {
  std::cout << "  " << protocol_name(r.protocol) << ": "
            << (r.ok ? "ok" : "FAIL") << " (" << r.detail << ") updates=" << r.updates_done
            << " msgs=" << r.msg_total << " drop=" << r.msg_dropped
            << " delay=" << r.msg_delayed << " dup=" << r.msg_duplicated;
  if (r.cheated) std::cout << (r.punished ? " punished" : " UNPUNISHED");
  if (r.funds_lost) std::cout << " FUNDS-LOST";
  std::cout << '\n';
}

// --trace-out DIR: failing drills are re-run with the tracer attached and
// dumped as fail-<protocol>-<seed>.jsonl (+ .metrics.json), capped so a
// systematically broken engine cannot flood the disk.
std::string g_trace_out;
int g_failure_traces = 0;
constexpr int kMaxFailureTraces = 5;

void dump_failure_trace(Protocol p, const FaultSchedule& s) {
  if (g_trace_out.empty() || g_failure_traces >= kMaxFailureTraces) return;
  ++g_failure_traces;
  using namespace daric;
  obs::CollectSink sink;
  std::string metrics_json;
  run_drill(p, s, DrillObs{&sink, &metrics_json, nullptr});  // deterministic re-run
  std::filesystem::create_directories(g_trace_out);
  const std::string stem = std::string("fail-") + protocol_name(p) + "-" +
                           std::to_string(s.seed);
  const auto base = std::filesystem::path(g_trace_out) / stem;
  obs::write_jsonl(base.string() + ".jsonl", sink.events);
  std::ofstream mout(base.string() + ".metrics.json");
  mout << metrics_json << '\n';
  std::cerr << "chaos: failure trace written to " << base.string() << ".jsonl" << std::endl;
}

int fail_with_schedule(const FaultSchedule& s, const DrillReport& r) {
  std::cerr << "chaos: invariant violation on " << protocol_name(r.protocol) << " seed "
            << s.seed << " (" << r.detail << ")\n"
            << "Replay with: daric_chaos --replay <file> --protocol "
            << protocol_name(r.protocol) << "\n--- schedule ---\n"
            << to_text(s) << "----------------" << std::endl;
  dump_failure_trace(r.protocol, s);
  return 1;
}

std::vector<Protocol> protocols_for(const std::string& name) {
  if (name == "daric") return {Protocol::kDaric};
  if (name == "lightning") return {Protocol::kLightning};
  if (name == "generalized") return {Protocol::kGeneralized};
  if (name == "eltoo") return {Protocol::kEltoo};
  if (name == "all")
    return {Protocol::kDaric, Protocol::kLightning, Protocol::kGeneralized, Protocol::kEltoo};
  throw std::runtime_error("unknown protocol '" + name + "'");
}

int run_sweep(std::uint64_t seed0, std::uint64_t count, const std::string& proto,
              bool verbose) {
  const std::vector<Protocol> protos = protocols_for(proto);
  std::uint64_t runs = 0;
  std::uint64_t cheats = 0, crashes = 0, aborts = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const FaultSchedule s = generate_schedule(seed0 + i);
    for (Protocol p : protos) {
      const DrillReport r = run_drill(p, s);
      ++runs;
      if (verbose) print_report(r);
      if (!r.ok) return fail_with_schedule(s, r);
      if (r.cheated) ++cheats;
      if (r.crashed) ++crashes;
      if (!r.create_ok || r.detail.find("aborted") != std::string::npos) ++aborts;
    }
    if (!verbose && (i + 1) % 50 == 0)
      std::cout << "chaos: " << (i + 1) << "/" << count << " schedules clean" << std::endl;
  }
  std::cout << "chaos: " << runs << " runs over " << count << " schedules ("
            << protos.size() << " protocol(s)), 0 violations; " << cheats
            << " fraud drills punished, " << crashes << " crash recoveries, " << aborts
            << " aborted runs closed safely" << std::endl;
  return 0;
}

// Durable sweep: every schedule kills a party and recovers it from the
// durable store. The base schedule keeps its message faults and downtime
// windows; fraud is cleared (mutually exclusive with crashes) and the
// crash point cycles deterministically through every message boundary
// (0 = after the update, 1..6 = before message k) × tail-fault kind
// (clean / torn record fragment / garbage), so all fsync points and both
// torn-write shapes are covered even for small N.
int run_durable_sweep(std::uint64_t seed0, std::uint64_t count, bool verbose) {
  std::uint64_t runs = 0, crashed = 0, mid = 0, torn = 0, garbage = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    FaultSchedule s = generate_schedule(seed0 + i);
    s.cheat = CheatPlan{};
    CrashPoint c;
    c.after_update =
        1 + static_cast<std::uint32_t>(mix(seed0 + i, 0xc4a54ull) % s.updates);
    c.at_msg = static_cast<std::uint32_t>(i % 7);
    // The proposer (A) sends messages 1/3/5, the responder (B) 2/4/6; pick
    // the victim that actually dies at that boundary.
    c.victim = c.at_msg == 0 ? (i % 2 == 0 ? sim::PartyId::kA : sim::PartyId::kB)
                             : (c.at_msg % 2 == 1 ? sim::PartyId::kA : sim::PartyId::kB);
    const std::uint64_t tail = (i / 7) % 3;
    if (tail != 0) {
      c.torn_bytes = 1 + static_cast<std::uint32_t>(mix(seed0 + i, 0x70bcull) % 48);
      c.corrupt_tail = tail == 2;
    }
    s.crashes.assign(1, c);

    const DrillReport r = run_drill(Protocol::kDaric, s);
    ++runs;
    if (verbose) print_report(r);
    if (!r.ok) return fail_with_schedule(s, r);
    // Message faults may abort an update before the crash point is even
    // reached — that run closes safely without crashing; count the rest.
    if (r.crashed) {
      ++crashed;
      if (c.at_msg != 0) ++mid;
      if (c.torn_bytes != 0) (c.corrupt_tail ? garbage : torn)++;
    }
    if (!verbose && (i + 1) % 50 == 0)
      std::cout << "chaos: " << (i + 1) << "/" << count << " crash replays clean"
                << std::endl;
  }
  std::cout << "chaos: " << runs << " crash-replay runs, 0 violations; " << crashed
            << " crash recoveries (" << mid << " mid-update, " << torn
            << " torn tails, " << garbage << " garbage tails)" << std::endl;
  return 0;
}

int run_replay(const std::string& path, const std::string& proto) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "chaos: cannot open '" << path << "'" << std::endl;
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const FaultSchedule s = parse_schedule(buf.str());
  if (to_text(s) != buf.str())
    std::cout << "chaos: note: input is not in canonical form (replay still exact)\n";
  bool all_ok = true;
  for (Protocol p : protocols_for(proto)) {
    const DrillReport r = run_drill(p, s);
    print_report(r);
    all_ok = all_ok && r.ok;
    if (!r.ok) return fail_with_schedule(s, r);
  }
  return all_ok ? 0 : 1;
}

int run_boundary(Round t_punish, Round delta) {
  const Round safe_limit = t_punish - delta;
  std::cout << "boundary: T=" << t_punish << " delta=" << delta << " => safe downtime <= "
            << safe_limit << " rounds\n";
  int rc = 0;
  for (Round d = 0; d <= safe_limit + 2; ++d) {
    const BoundaryReport r = run_downtime_boundary(d, t_punish, delta);
    const bool expect_safe = d <= safe_limit;
    const bool as_expected =
        r.conservation_ok && (expect_safe ? (r.punished && !r.funds_lost)
                                          : (r.funds_lost && !r.punished));
    std::cout << "  offline=" << d << ": "
              << (r.punished ? "punished" : r.funds_lost ? "funds lost" : "???")
              << (as_expected ? "" : "  <-- UNEXPECTED") << '\n';
    if (!as_expected) rc = 1;
  }
  std::cout << (rc == 0 ? "boundary: exact at T - delta, as Theorem 1 demands"
                        : "boundary: MISMATCH with Theorem 1")
            << std::endl;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t sweep = 0, durable = 0, seed0 = 1, emit_seed = 0;
  std::string replay_path, proto = "all";
  Round t_punish = 8, delta = 2;
  bool boundary = false, emit = false, verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "chaos: " << a << " needs a value" << std::endl;
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--sweep") sweep = std::stoull(next());
    else if (a == "--durable-sweep") durable = std::stoull(next());
    else if (a == "--seed") seed0 = std::stoull(next());
    else if (a == "--protocol") proto = next();
    else if (a == "--replay") replay_path = next();
    else if (a == "--emit") { emit = true; emit_seed = std::stoull(next()); }
    else if (a == "--boundary") boundary = true;
    else if (a == "--t-punish") t_punish = static_cast<Round>(std::stoull(next()));
    else if (a == "--delta") delta = static_cast<Round>(std::stoull(next()));
    else if (a == "--verbose" || a == "-v") verbose = true;
    else if (a == "--trace-out") g_trace_out = next();
    else {
      std::cerr << "usage: daric_chaos --sweep N [--seed S0] [--protocol "
                   "daric|lightning|generalized|eltoo|all] [-v] [--trace-out DIR]\n"
                   "       daric_chaos --durable-sweep N [--seed S0] [-v]\n"
                   "       daric_chaos --replay FILE [--protocol P]\n"
                   "       daric_chaos --emit SEED\n"
                   "       daric_chaos --boundary [--t-punish T] [--delta D]"
                << std::endl;
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  try {
    if (emit) {
      std::cout << to_text(generate_schedule(emit_seed, delta, t_punish));
      return 0;
    }
    if (!replay_path.empty()) return run_replay(replay_path, proto);
    if (boundary) return run_boundary(t_punish, delta);
    if (durable > 0) return run_durable_sweep(seed0, durable, verbose);
    if (sweep > 0) return run_sweep(seed0, sweep, proto, verbose);
    std::cerr << "chaos: nothing to do (try --sweep 200)" << std::endl;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "chaos: error: " << e.what() << std::endl;
    return 2;
  }
}
